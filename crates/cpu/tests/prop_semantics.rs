//! Property tests of the functional execution layer the pipeline rests on:
//! total ALU semantics, algebraic identities, and gather/execute coherence.

use proptest::prelude::*;
use wec_cpu::exec::{execute, gather_sources, ExecResult};
use wec_isa::inst::{AluOp, BranchCond, Inst, LoadKind, StoreKind};
use wec_isa::reg::Reg;
use wec_isa::semantics::{eval_alu, eval_branch};

proptest! {
    #[test]
    fn alu_is_total(a in any::<u64>(), b in any::<u64>()) {
        for op in AluOp::ALL {
            let _ = eval_alu(op, a, b); // never panics, even div/rem by zero
        }
    }

    #[test]
    fn alu_algebra(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(eval_alu(AluOp::Add, a, b), eval_alu(AluOp::Add, b, a));
        prop_assert_eq!(eval_alu(AluOp::And, a, b), eval_alu(AluOp::And, b, a));
        prop_assert_eq!(eval_alu(AluOp::Xor, a, a), 0);
        prop_assert_eq!(eval_alu(AluOp::Or, a, 0), a);
        prop_assert_eq!(eval_alu(AluOp::Sub, a, a), 0);
        prop_assert_eq!(
            eval_alu(AluOp::Sub, eval_alu(AluOp::Add, a, b), b),
            a
        );
    }

    #[test]
    fn branch_conditions_partition(a in any::<u64>(), b in any::<u64>()) {
        // Eq/Ne are complements; Lt/Ge are complements; Ltu/Geu too.
        prop_assert_ne!(
            eval_branch(BranchCond::Eq, a, b),
            eval_branch(BranchCond::Ne, a, b)
        );
        prop_assert_ne!(
            eval_branch(BranchCond::Lt, a, b),
            eval_branch(BranchCond::Ge, a, b)
        );
        prop_assert_ne!(
            eval_branch(BranchCond::Ltu, a, b),
            eval_branch(BranchCond::Geu, a, b)
        );
    }

    #[test]
    fn load_agen_matches_wrapping_arithmetic(
        base in any::<u64>(),
        off in any::<i32>(),
    ) {
        let inst = Inst::Load {
            kind: LoadKind::D,
            rd: Reg(1),
            base: Reg(2),
            off,
        };
        match execute(&inst, base, 0, 0) {
            ExecResult::LoadAddr(a) => {
                prop_assert_eq!(a.0, base.wrapping_add(off as i64 as u64))
            }
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }

    #[test]
    fn store_agen_uses_slot1_as_base(
        data in any::<u64>(),
        base in any::<u64>(),
        off in any::<i32>(),
    ) {
        let inst = Inst::Store {
            kind: StoreKind::W,
            rs: Reg(3),
            base: Reg(4),
            off,
        };
        match execute(&inst, data, base, 0) {
            ExecResult::StoreReady { addr, data: d } => {
                prop_assert_eq!(addr.0, base.wrapping_add(off as i64 as u64));
                prop_assert_eq!(d, data);
            }
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }

    #[test]
    fn every_source_slot_is_consistent_with_src_lists(
        rd in 0u8..32, rs1 in 0u8..32, rs2 in 0u8..32,
    ) {
        // gather_sources and Inst::src_iregs must agree on the integer
        // registers an ALU instruction reads.
        let inst = Inst::Alu {
            op: AluOp::Add,
            rd: Reg(rd),
            rs1: Reg(rs1),
            rs2: Reg(rs2),
        };
        let slots = gather_sources(&inst);
        let listed = inst.src_iregs();
        let slot_regs: Vec<Reg> = slots
            .iter()
            .filter_map(|s| match s {
                Some(wec_cpu::exec::SrcReg::I(r)) => Some(*r),
                _ => None,
            })
            .collect();
        let listed_regs: Vec<Reg> = listed.iter().flatten().copied().collect();
        prop_assert_eq!(slot_regs, listed_regs);
    }
}
