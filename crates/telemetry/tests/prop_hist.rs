//! Property tests: the log2 latency histogram against the stream of raw
//! observations it summarizes.

use proptest::prelude::*;
use wec_telemetry::Log2Histogram;

fn observe_all(values: &[u64]) -> Log2Histogram {
    let mut h = Log2Histogram::new();
    for &v in values {
        h.observe(v);
    }
    h
}

proptest! {
    /// Bucket counts always sum to the observation count, and the exact
    /// aggregates (sum/min/max) match the raw stream.
    #[test]
    fn buckets_sum_to_count(values in proptest::collection::vec(any::<u32>(), 0..200)) {
        let values: Vec<u64> = values.into_iter().map(u64::from).collect();
        let h = observe_all(&values);
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.buckets().iter().sum::<u64>(), values.len() as u64);
        prop_assert_eq!(h.sum(), values.iter().sum::<u64>());
        if let Some(&max) = values.iter().max() {
            prop_assert_eq!(h.max(), max);
            prop_assert_eq!(h.min(), *values.iter().min().unwrap());
        } else {
            prop_assert!(h.is_empty());
        }
    }

    /// Every observation lands in the bucket whose floor covers it.
    #[test]
    fn observations_land_in_their_bucket(v in any::<u64>()) {
        let h = observe_all(&[v]);
        let idx = Log2Histogram::bucket_of(v);
        prop_assert_eq!(h.buckets()[idx], 1);
        prop_assert!(Log2Histogram::bucket_floor(idx) <= v);
    }

    /// Merging equals observing the concatenated stream (so merge is
    /// commutative and associative up to the exact aggregates).
    #[test]
    fn merge_equals_concatenation(
        a in proptest::collection::vec(any::<u64>(), 0..100),
        b in proptest::collection::vec(any::<u64>(), 0..100),
        c in proptest::collection::vec(any::<u64>(), 0..100),
    ) {
        let (ha, hb, hc) = (observe_all(&a), observe_all(&b), observe_all(&c));

        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        let direct = observe_all(&all);

        // (a ⊔ b) ⊔ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a ⊔ (b ⊔ c), merged in the other association and order
        let mut right = hc.clone();
        right.merge(&hb);
        right.merge(&ha);

        for h in [&left, &right] {
            prop_assert_eq!(h.count(), direct.count());
            prop_assert_eq!(h.sum(), direct.sum());
            prop_assert_eq!(h.min(), direct.min());
            prop_assert_eq!(h.max(), direct.max());
            prop_assert_eq!(h.buckets(), direct.buckets());
        }
    }

    /// Quantiles are monotone in `q` and bounded by the exact extremes.
    #[test]
    fn quantiles_are_monotone_and_bounded(
        values in proptest::collection::vec(1u64..1_000_000, 1..200),
    ) {
        let h = observe_all(&values);
        let qs = [0.0, 0.25, 0.5, 0.9, 0.99, 1.0];
        let mut prev = 0u64;
        for &q in &qs {
            let v = h.quantile(q);
            prop_assert!(v >= prev, "quantile({q}) = {v} < {prev}");
            prop_assert!(v <= h.max());
            prev = v;
        }
        prop_assert_eq!(h.quantile(1.0), h.max());
    }
}
