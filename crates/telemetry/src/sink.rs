//! The event sink: accumulates the JSONL event stream and per-kind counts.
//!
//! The machine emits events in cycle order (it drains component buffers once
//! per cycle), so the sink is a plain append buffer — no sorting, no
//! per-event allocation beyond the shared string.

use std::io::Write as _;
use std::path::Path;

use crate::event::TraceEvent;

/// Accumulates trace events as JSONL plus summary counts.
#[derive(Clone, Debug, Default)]
pub struct EventSink {
    jsonl: String,
    counts: Vec<(&'static str, u64)>,
    total: u64,
}

impl EventSink {
    pub fn new() -> Self {
        Self::default()
    }

    /// Serialize and count one event.
    pub fn emit(&mut self, cycle: u64, ev: &TraceEvent) {
        ev.write_jsonl(cycle, &mut self.jsonl);
        self.total += 1;
        let name = ev.name();
        match self.counts.iter_mut().find(|(k, _)| *k == name) {
            Some((_, n)) => *n += 1,
            None => self.counts.push((name, 1)),
        }
    }

    pub fn total(&self) -> u64 {
        self.total
    }

    /// Per-kind counts, sorted by kind name.
    pub fn counts(&self) -> Vec<(&'static str, u64)> {
        let mut v = self.counts.clone();
        v.sort_unstable_by_key(|&(k, _)| k);
        v
    }

    pub fn count_of(&self, name: &str) -> u64 {
        self.counts
            .iter()
            .find(|(k, _)| *k == name)
            .map(|&(_, n)| n)
            .unwrap_or(0)
    }

    /// The accumulated JSONL text.
    pub fn as_jsonl(&self) -> &str {
        &self.jsonl
    }

    /// Write the JSONL stream to a file.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        f.write_all(self.jsonl.as_bytes())?;
        f.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_appends_lines_and_counts() {
        let mut s = EventSink::new();
        s.emit(1, &TraceEvent::WecFill { tu: 0, addr: 64 });
        s.emit(2, &TraceEvent::WecFill { tu: 1, addr: 128 });
        s.emit(3, &TraceEvent::Abort { id: 7 });
        assert_eq!(s.total(), 3);
        assert_eq!(s.count_of("wec_fill"), 2);
        assert_eq!(s.count_of("abort"), 1);
        assert_eq!(s.count_of("missing"), 0);
        assert_eq!(s.as_jsonl().lines().count(), 3);
        assert_eq!(s.counts(), vec![("abort", 1), ("wec_fill", 2)]);
    }
}
