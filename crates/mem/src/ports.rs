//! Per-cycle port arbitration.
//!
//! The L1 data cache has a fixed number of ports; the paper's wrong-path
//! mechanism explicitly keys on them ("waiting … for an available memory
//! port", §3.1.1), so wrong-execution loads contend for the same ports as
//! correct loads.

use wec_common::ids::Cycle;

/// A bank of `width` ports usable once per cycle each.
#[derive(Clone, Debug)]
pub struct PortSet {
    width: u32,
    cycle: Cycle,
    used: u32,
}

impl PortSet {
    pub fn new(width: u32) -> Self {
        assert!(width >= 1);
        PortSet {
            width,
            cycle: Cycle::ZERO,
            used: 0,
        }
    }

    fn roll(&mut self, now: Cycle) {
        if now != self.cycle {
            debug_assert!(now > self.cycle, "time went backwards");
            self.cycle = now;
            self.used = 0;
        }
    }

    /// Claim one port in cycle `now`. Returns false when all ports are taken.
    pub fn try_claim(&mut self, now: Cycle) -> bool {
        self.roll(now);
        if self.used < self.width {
            self.used += 1;
            true
        } else {
            false
        }
    }

    /// Ports still free in cycle `now`.
    pub fn free(&mut self, now: Cycle) -> u32 {
        self.roll(now);
        self.width - self.used
    }

    pub fn width(&self) -> u32 {
        self.width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_up_to_width_per_cycle() {
        let mut p = PortSet::new(2);
        let c = Cycle(5);
        assert!(p.try_claim(c));
        assert!(p.try_claim(c));
        assert!(!p.try_claim(c));
        assert_eq!(p.free(c), 0);
    }

    #[test]
    fn resets_on_new_cycle() {
        let mut p = PortSet::new(1);
        assert!(p.try_claim(Cycle(1)));
        assert!(!p.try_claim(Cycle(1)));
        assert!(p.try_claim(Cycle(2)));
        assert_eq!(p.free(Cycle(3)), 1);
    }
}
