//! Per-cache statistics.
//!
//! Figure 17 of the paper reports exactly these quantities: data-L1 traffic
//! (all accesses reaching the cache, including wrong-execution ones) and the
//! correct-path miss count.  Every cache-like structure in the machine keeps
//! one `CacheStats`, and the machine-level metrics aggregate them.

use wec_common::stats::{Counter, StatSet};

/// What kind of access is hitting a cache (the paper's taxonomy: §3.2.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessKind {
    /// Correct-path demand load.
    CorrectLoad,
    /// Correct-path store.
    CorrectStore,
    /// Load issued down a resolved-wrong branch path.
    WrongPathLoad,
    /// Load issued by a thread known to be mis-speculated.
    WrongThreadLoad,
    /// Hardware prefetch (next-line).
    Prefetch,
    /// Instruction fetch.
    InstFetch,
}

impl AccessKind {
    /// Is this access *wrong execution* in the paper's sense (issued after
    /// the control speculation is known wrong)?
    #[inline]
    pub fn is_wrong(self) -> bool {
        matches!(
            self,
            AccessKind::WrongPathLoad | AccessKind::WrongThreadLoad
        )
    }

    /// Does this access count toward correct-path demand statistics?
    #[inline]
    pub fn is_correct_demand(self) -> bool {
        matches!(self, AccessKind::CorrectLoad | AccessKind::CorrectStore)
    }
}

/// Counters for one cache structure.
#[derive(Clone, Debug, Default)]
pub struct CacheStats {
    /// Correct-path demand accesses (loads + stores).
    pub demand_accesses: Counter,
    /// Correct-path demand misses (in this structure alone).
    pub demand_misses: Counter,
    /// Correct-path demand misses that also missed every side structure and
    /// went to the next level ("effective" misses — what the WEC reduces).
    pub demand_misses_to_next_level: Counter,
    /// Wrong-execution accesses (the Figure 17 traffic increase).
    pub wrong_accesses: Counter,
    /// Wrong-execution misses that went to the next level.
    pub wrong_misses_to_next_level: Counter,
    /// Prefetches issued from this structure.
    pub prefetches_issued: Counter,
    /// Instruction fetch accesses.
    pub ifetch_accesses: Counter,
    /// Instruction fetch misses.
    pub ifetch_misses: Counter,
    /// Valid blocks displaced.
    pub evictions: Counter,
    /// Dirty blocks written back to the next level.
    pub writebacks: Counter,
    /// Hits served by a side structure (WEC / victim cache / prefetch
    /// buffer) on a miss in this structure.
    pub side_hits: Counter,
    /// Correct-path hits on blocks a wrong execution brought in — the
    /// paper's indirect prefetching effect, observed.
    pub useful_wrong_fetches: Counter,
    /// Correct-path hits on hardware-prefetched blocks.
    pub useful_prefetches: Counter,
}

impl CacheStats {
    /// Record a demand/wrong/ifetch access and whether it hit this structure.
    pub fn record(&mut self, kind: AccessKind, hit: bool) {
        match kind {
            AccessKind::CorrectLoad | AccessKind::CorrectStore => {
                self.demand_accesses.inc();
                if !hit {
                    self.demand_misses.inc();
                }
            }
            AccessKind::WrongPathLoad | AccessKind::WrongThreadLoad => {
                self.wrong_accesses.inc();
            }
            AccessKind::Prefetch => {}
            AccessKind::InstFetch => {
                self.ifetch_accesses.inc();
                if !hit {
                    self.ifetch_misses.inc();
                }
            }
        }
    }

    /// Total accesses that reached this cache (Figure 17's "traffic").
    pub fn total_traffic(&self) -> u64 {
        self.demand_accesses.get() + self.wrong_accesses.get()
    }

    /// Demand miss rate (0 when idle).
    pub fn demand_miss_rate(&self) -> f64 {
        let acc = self.demand_accesses.get();
        if acc == 0 {
            0.0
        } else {
            self.demand_misses.get() as f64 / acc as f64
        }
    }

    /// Dump into a [`StatSet`] with the given namespace prefix.
    pub fn dump(&self, out: &mut StatSet, prefix: &str) {
        let mut put = |name: &str, v: u64| out.push(format!("{prefix}.{name}"), v);
        put("demand_accesses", self.demand_accesses.get());
        put("demand_misses", self.demand_misses.get());
        put(
            "demand_misses_to_next_level",
            self.demand_misses_to_next_level.get(),
        );
        put("wrong_accesses", self.wrong_accesses.get());
        put(
            "wrong_misses_to_next_level",
            self.wrong_misses_to_next_level.get(),
        );
        put("prefetches_issued", self.prefetches_issued.get());
        put("ifetch_accesses", self.ifetch_accesses.get());
        put("ifetch_misses", self.ifetch_misses.get());
        put("evictions", self.evictions.get());
        put("writebacks", self.writebacks.get());
        put("side_hits", self.side_hits.get());
        put("useful_wrong_fetches", self.useful_wrong_fetches.get());
        put("useful_prefetches", self.useful_prefetches.get());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_classify() {
        assert!(AccessKind::WrongPathLoad.is_wrong());
        assert!(AccessKind::WrongThreadLoad.is_wrong());
        assert!(!AccessKind::CorrectLoad.is_wrong());
        assert!(AccessKind::CorrectStore.is_correct_demand());
        assert!(!AccessKind::Prefetch.is_correct_demand());
    }

    #[test]
    fn record_buckets_by_kind() {
        let mut s = CacheStats::default();
        s.record(AccessKind::CorrectLoad, false);
        s.record(AccessKind::CorrectStore, true);
        s.record(AccessKind::WrongPathLoad, false);
        s.record(AccessKind::InstFetch, false);
        assert_eq!(s.demand_accesses.get(), 2);
        assert_eq!(s.demand_misses.get(), 1);
        assert_eq!(s.wrong_accesses.get(), 1);
        assert_eq!(s.ifetch_misses.get(), 1);
        assert_eq!(s.total_traffic(), 3);
        assert!((s.demand_miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dump_namespaces_keys() {
        let mut s = CacheStats::default();
        s.record(AccessKind::CorrectLoad, false);
        let mut out = StatSet::new();
        s.dump(&mut out, "tu0.l1d");
        assert_eq!(out.get("tu0.l1d.demand_accesses"), Some(1));
        assert_eq!(out.get("tu0.l1d.demand_misses"), Some(1));
    }

    #[test]
    fn miss_rate_idle_is_zero() {
        assert_eq!(CacheStats::default().demand_miss_rate(), 0.0);
    }
}
