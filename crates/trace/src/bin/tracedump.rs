//! Pretty-print and validate a `.wectrace` file.
//!
//! ```text
//! tracedump FILE [--records N] [--no-verify]
//! ```
//!
//! Prints the header (format/simulator revision, workload identity,
//! configuration label, stream sizes and compression ratio) and the first
//! `N` records (default 16) in global merged order, then fully decodes
//! every stream to validate the file, block, and content checksums.
//! `--no-verify` skips the full decode for a quick header peek.
//!
//! Exit codes: `0` valid, `1` corrupt or unreadable, `2` usage error.

use std::path::PathBuf;
use std::process::ExitCode;

use wec_trace::Trace;

fn usage() -> ExitCode {
    eprintln!("usage: tracedump FILE [--records N] [--no-verify]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut file: Option<PathBuf> = None;
    let mut show = 16usize;
    let mut verify = true;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--records" => {
                let Some(n) = it.next().and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                show = n;
            }
            "--no-verify" => verify = false,
            other if !other.starts_with('-') && file.is_none() => file = Some(other.into()),
            _ => return usage(),
        }
    }
    let Some(file) = file else { return usage() };

    let trace = match Trace::read_from(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tracedump: {}: {e}", file.display());
            return ExitCode::FAILURE;
        }
    };

    let h = &trace.header;
    let payload = trace.encoded_bytes();
    println!("{}", file.display());
    println!("  format version : {}", h.format_version);
    println!("  sim revision   : {}", h.sim_revision);
    println!("  workload       : {} (scale {})", h.bench, h.scale_units);
    println!("  config         : {}", h.cfg_label);
    println!("  thread units   : {}", h.n_tus);
    println!("  records        : {}", h.total_records);
    println!(
        "  payload        : {payload} bytes ({:.3} bytes/record)",
        if h.total_records > 0 {
            payload as f64 / h.total_records as f64
        } else {
            0.0
        }
    );
    println!("  identity       : {:016x}", trace.identity());
    for (i, s) in trace.streams.iter().enumerate() {
        println!(
            "  tu{i:<2} stream    : {} records, {} blocks, {} bytes",
            s.records,
            s.blocks.len(),
            s.encoded_bytes()
        );
    }

    if show > 0 {
        println!("  first {show} records (merged order):");
        let merged = match trace.merged() {
            Ok(m) => m,
            Err(e) => {
                eprintln!("tracedump: {e}");
                return ExitCode::FAILURE;
            }
        };
        for rec in merged.take(show) {
            match rec {
                Ok(r) => println!(
                    "    cycle {:>8}  tu{}  {:<7} addr {:#012x}  pc {:#010x}{}",
                    r.cycle,
                    r.tu,
                    r.kind.name(),
                    r.addr,
                    r.pc,
                    if r.squashed { "  [squashed]" } else { "" }
                ),
                Err(e) => {
                    eprintln!("tracedump: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    if verify {
        match trace.verify() {
            Ok(n) => println!("  verify         : ok, {n} records decoded, all checksums match"),
            Err(e) => {
                eprintln!("tracedump: verification failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
