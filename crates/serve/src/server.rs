//! The accept loop, request routing, and graceful drain.
//!
//! The daemon is deliberately boring concurrency: a nonblocking listener
//! polled every 20 ms, one short-lived thread per connection (one request
//! per connection, `Connection: close`), and the long-lived worker pool
//! behind the queue.  Drain — `POST /shutdown` or SIGTERM/SIGINT — flips
//! one flag: submissions start answering `503`, the accept loop waits for
//! the outstanding-job count to reach zero, closes the queue, joins the
//! workers and the sampler, writes `stats.json`, and [`Server::run`]
//! returns.
//!
//! Every answered request is observed twice on the way out: counted into
//! the per-endpoint request/latency metrics behind `GET /metrics`, and
//! appended to `access.jsonl` (`wec-access-log-v1`) when a log directory
//! is configured.  Handlers return the status they wrote so the
//! connection wrapper does both without each handler threading it back.
//!
//! Endpoints:
//!
//! | method    | path                   | answer                                   |
//! |-----------|------------------------|------------------------------------------|
//! | POST      | `/jobs`                | job record (shared on dedup); `503` full |
//! | POST      | `/hints`               | `{"accepted":…}` speculation hint (router tier) |
//! | GET       | `/jobs/<id>`           | `wec-job-record-v1` document             |
//! | GET       | `/jobs/<id>/result.kv` | result counters; `202` until terminal    |
//! | GET       | `/jobs/<id>/events`    | chunked `progress.jsonl` stream          |
//! | GET       | `/jobs/<id>/attribution` | `wec-attribution-v1` ledger; `404` off |
//! | GET, HEAD | `/stats`               | `wec-serve-stats-v1` document (v2 with `--speculate`) |
//! | GET, HEAD | `/healthz`             | liveness probe (`{"ok":…,"draining":…}`) |
//! | GET       | `/metrics`             | Prometheus-style text exposition         |
//! | GET       | `/dashboard`           | self-contained live dashboard page       |
//! | GET       | `/dashboard/data`      | `wec-dashboard-data-v1` document         |
//! | POST      | `/shutdown`            | begin graceful drain                     |

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use wec_telemetry::json::escape_into;

use crate::dashboard;
use crate::http::{self, ChunkedWriter, CountingWriter, Request};
use crate::job::JobState;
use crate::lock;
use crate::metrics::endpoint_index;
use crate::ringbuf::{sample_from, SampleCursor};
use crate::state::{ServeConfig, ServerState, SubmitError};
use crate::worker;

/// Set by the SIGTERM/SIGINT handler; the accept loop folds it into the
/// drain flag on its next poll.
static TERMINATE: AtomicBool = AtomicBool::new(false);

/// Route SIGTERM and SIGINT into a graceful drain.  Raw `signal(2)` via
/// the C runtime already linked into every binary — the workspace carries
/// no libc crate, and a handler that stores one atomic is async-safe.
#[cfg(unix)]
pub fn install_signal_handlers() {
    extern "C" fn on_signal(_signum: i32) {
        TERMINATE.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

#[cfg(not(unix))]
pub fn install_signal_handlers() {}

fn error_json(msg: &str) -> String {
    let mut out = String::from("{\"error\":");
    escape_into(&mut out, msg);
    out.push('}');
    out
}

/// The daemon: a bound listener plus its worker pool and sampler.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    workers: Vec<JoinHandle<()>>,
    sampler: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and spawn
    /// the worker pool and the ring-buffer sampler.  The listener is live
    /// once this returns.  A `backend_id` of `"auto"` resolves to the
    /// bound address (ephemeral port included), so `--backend-id auto`
    /// yields a stable, unique identity per listening daemon.
    pub fn bind(addr: &str, cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let mut cfg = cfg;
        if cfg.backend_id.as_deref() == Some("auto") {
            cfg.backend_id = Some(listener.local_addr()?.to_string());
        }
        let state = ServerState::new(cfg)?;
        let workers = worker::spawn(&state);
        let sampler = spawn_sampler(&state);
        Ok(Server {
            listener,
            state,
            workers,
            sampler,
        })
    }

    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    pub fn state(&self) -> Arc<ServerState> {
        self.state.clone()
    }

    /// Serve until drained: accept until shutdown is requested and every
    /// accepted job is terminal, then close the queue, join the workers
    /// and the sampler, and write the exit logs.
    pub fn run(self) -> io::Result<()> {
        loop {
            if TERMINATE.load(Ordering::SeqCst) {
                self.state.draining.store(true, Ordering::SeqCst);
            }
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    let st = self.state.clone();
                    let _ = std::thread::Builder::new()
                        .name("wec-serve-conn".to_string())
                        .spawn(move || handle_conn(st, stream, peer));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if self.state.draining.load(Ordering::SeqCst) {
                        // Queued speculation would hold `outstanding` up
                        // forever once demand stops; reclaim it so drain
                        // only waits on real work.
                        self.state.purge_speculation();
                        if self.state.outstanding() == 0 {
                            break;
                        }
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    eprintln!("wec-serve: accept error: {e}");
                    std::thread::sleep(Duration::from_millis(100));
                }
            }
        }
        self.state.queue.close();
        for h in self.workers {
            let _ = h.join();
        }
        self.state.sampler_stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.sampler {
            let _ = h.join();
        }
        self.state.write_exit_logs();
        Ok(())
    }
}

/// The ring-buffer sampler: every `sample_interval`, turn one consistent
/// stats snapshot into a [`crate::ringbuf::ServiceSample`] and push it.
/// Disabled by a zero interval (zero cost when off — no thread exists).
fn spawn_sampler(state: &Arc<ServerState>) -> Option<JoinHandle<()>> {
    let interval = state.cfg.sample_interval;
    if interval.is_zero() {
        return None;
    }
    let st = state.clone();
    std::thread::Builder::new()
        .name("wec-serve-sampler".to_string())
        .spawn(move || {
            let mut cursor = SampleCursor::default();
            // Prime so the first real sample rates over a full interval.
            sample_from(&st.snapshot(), &mut cursor);
            loop {
                // Sleep in short slices so drain never waits a full
                // interval for this thread.
                let mut slept = Duration::ZERO;
                while slept < interval {
                    if st.sampler_stop.load(Ordering::SeqCst) {
                        return;
                    }
                    let nap = (interval - slept).min(Duration::from_millis(50));
                    std::thread::sleep(nap);
                    slept += nap;
                }
                if let Some(s) = sample_from(&st.snapshot(), &mut cursor) {
                    st.samples.push(s);
                }
            }
        })
        .ok()
}

fn handle_conn(state: Arc<ServerState>, stream: TcpStream, peer: SocketAddr) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(state.cfg.io_timeout));
    let _ = stream.set_write_timeout(Some(state.cfg.io_timeout));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut w = CountingWriter::new(BufWriter::new(stream));
    // The peer IP (not the ephemeral port) keys the predictor's
    // per-client history: one client's sweep walk is one history.
    let client = peer.ip().to_string();
    let t = Instant::now();
    match http::read_request(&mut reader) {
        Ok(req) => {
            if let Ok(status) = route(&state, &req, &client, &mut w) {
                let _ = w.flush();
                let dur_us = t.elapsed().as_micros() as u64;
                state
                    .metrics
                    .observe_request(endpoint_index(&req.path), status, dur_us);
                state.log_access(&req.method, &req.path, status, dur_us, w.bytes_written());
            }
        }
        Err(e) => {
            // Malformed input gets a 400; transport errors and clean
            // closes get nothing (there is no one left to answer).
            if let Some(msg) = e.client_message() {
                let ok = http::write_json(&mut w, 400, "Bad Request", &error_json(msg)).is_ok();
                let _ = w.flush();
                if ok {
                    let dur_us = t.elapsed().as_micros() as u64;
                    state.log_access("-", "-", 400, dur_us, w.bytes_written());
                }
            }
        }
    }
    let _ = w.flush();
}

/// Dispatch one request; returns the response status actually written (for
/// the request metrics and the access log).
fn route<W: Write>(
    state: &Arc<ServerState>,
    req: &Request,
    client: &str,
    w: &mut W,
) -> io::Result<u16> {
    let method = req.method.as_str();
    match req.path.as_str() {
        "/jobs" => match method {
            "POST" => submit(state, req, client, w),
            _ => method_not_allowed(w, "POST"),
        },
        "/hints" => match method {
            "POST" => hint(state, req, w),
            _ => method_not_allowed(w, "POST"),
        },
        "/stats" => match method {
            "GET" => reply_json(w, 200, "OK", &state.stats_json()),
            "HEAD" => reply_head(w, &state.stats_json()),
            _ => method_not_allowed(w, "GET, HEAD"),
        },
        "/healthz" => {
            let body = format!(
                "{{\"ok\":true,\"draining\":{}}}",
                state.draining.load(Ordering::SeqCst)
            );
            match method {
                "GET" => reply_json(w, 200, "OK", &body),
                "HEAD" => reply_head(w, &body),
                _ => method_not_allowed(w, "GET, HEAD"),
            }
        }
        "/metrics" => match method {
            "GET" => {
                let page = state
                    .metrics
                    .render_prometheus(&state.snapshot(), state.backend_id());
                http::write_response(
                    w,
                    200,
                    "OK",
                    "text/plain; version=0.0.4",
                    page.as_bytes(),
                    &[],
                )?;
                Ok(200)
            }
            _ => method_not_allowed(w, "GET"),
        },
        "/dashboard" => match method {
            "GET" => {
                http::write_response(
                    w,
                    200,
                    "OK",
                    "text/html; charset=utf-8",
                    dashboard::DASHBOARD_HTML.as_bytes(),
                    &[],
                )?;
                Ok(200)
            }
            _ => method_not_allowed(w, "GET"),
        },
        "/dashboard/data" => match method {
            "GET" => reply_json(w, 200, "OK", &dashboard::dashboard_data_json(state)),
            _ => method_not_allowed(w, "GET"),
        },
        "/shutdown" => match method {
            "POST" => {
                state.draining.store(true, Ordering::SeqCst);
                reply_json(w, 200, "OK", "{\"draining\":true}")
            }
            _ => method_not_allowed(w, "POST"),
        },
        path => match path.strip_prefix("/jobs/") {
            Some(rest) => job_route(state, method, rest, w),
            None => reply_json(w, 404, "Not Found", &error_json("no such endpoint")),
        },
    }
}

fn reply_json<W: Write>(w: &mut W, status: u16, reason: &str, body: &str) -> io::Result<u16> {
    http::write_json(w, status, reason, body)?;
    Ok(status)
}

/// The `HEAD` twin of a JSON `GET`: same status and `Content-Length`, no
/// body bytes.
fn reply_head<W: Write>(w: &mut W, body: &str) -> io::Result<u16> {
    http::write_head_only(w, 200, "OK", "application/json", body.len())?;
    Ok(200)
}

fn method_not_allowed<W: Write>(w: &mut W, allow: &str) -> io::Result<u16> {
    http::write_response(
        w,
        405,
        "Method Not Allowed",
        "application/json",
        error_json("method not allowed").as_bytes(),
        &[("Allow", allow.to_string())],
    )?;
    Ok(405)
}

fn submit<W: Write>(
    state: &Arc<ServerState>,
    req: &Request,
    client: &str,
    w: &mut W,
) -> io::Result<u16> {
    let body = match req.body_utf8() {
        Ok(b) => b,
        Err(e) => return reply_json(w, 400, "Bad Request", &error_json(&e)),
    };
    let spec = match crate::job::JobSpec::parse(body) {
        Ok(s) => s,
        Err(e) => return reply_json(w, 400, "Bad Request", &error_json(&e)),
    };
    match state.submit_with_client(spec, client) {
        Ok(slot) => reply_json(w, 200, "OK", &slot.record().to_json()),
        Err(e) => {
            let msg = match e {
                SubmitError::QueueFull => "queue full, retry later",
                SubmitError::Draining => "draining, not accepting jobs",
            };
            // A draining 503 carries `X-Wec-Draining: true` so a fronting
            // router can re-shard immediately instead of burning its
            // retry budget against a node that will never accept.
            let mut headers = vec![("Retry-After", retry_after_secs(state).to_string())];
            if e == SubmitError::Draining {
                headers.push(("X-Wec-Draining", "true".to_string()));
            }
            http::write_response(
                w,
                503,
                "Service Unavailable",
                "application/json",
                error_json(msg).as_bytes(),
                &headers,
            )?;
            Ok(503)
        }
    }
}

/// `POST /hints` — a routing-tier speculation hint.  The body is the same
/// job-spec JSON as `POST /jobs`, but acceptance is best-effort and never
/// promises execution: the spec is offered to the low-priority speculative
/// lane ([`ServerState::submit_hint`]) and the answer merely reports
/// whether a speculation was started.  Always `200` for a parseable spec —
/// hints are advisory, so a daemon without `--speculate` answers
/// `{"accepted":false}` rather than erroring.
fn hint<W: Write>(state: &Arc<ServerState>, req: &Request, w: &mut W) -> io::Result<u16> {
    let body = match req.body_utf8() {
        Ok(b) => b,
        Err(e) => return reply_json(w, 400, "Bad Request", &error_json(&e)),
    };
    let spec = match crate::job::JobSpec::parse(body) {
        Ok(s) => s,
        Err(e) => return reply_json(w, 400, "Bad Request", &error_json(&e)),
    };
    let accepted = state.submit_hint(spec);
    reply_json(w, 200, "OK", &format!("{{\"accepted\":{accepted}}}"))
}

/// How long a refused submitter should wait before retrying: the time the
/// backlog will take to clear at the recently observed completion rate
/// (ring sampler), falling back to the lifetime mean service time spread
/// over the pool, clamped to 1..=30 seconds.  A lightly loaded server
/// still answers 1; a deep queue of slow jobs answers up to 30.
fn retry_after_secs(state: &ServerState) -> u64 {
    let depth = state.queue.depth() as f64;
    let secs = match state
        .samples
        .last()
        .map(|s| s.jobs_per_sec)
        .filter(|&r| r > 0.0)
    {
        Some(rate) => depth / rate,
        None => {
            let mean_ms = state.metrics.mean_job_duration_ms();
            let workers = state.cfg.workers.max(1) as f64;
            depth * mean_ms / 1000.0 / workers
        }
    };
    (secs.ceil() as u64).clamp(1, 30)
}

fn job_route<W: Write>(
    state: &Arc<ServerState>,
    method: &str,
    rest: &str,
    w: &mut W,
) -> io::Result<u16> {
    let mut parts = rest.splitn(2, '/');
    let id = parts.next().unwrap_or("");
    let sub = parts.next();
    let slot = match id.parse::<u64>().ok().and_then(|id| state.job(id)) {
        Some(s) => s,
        None => return reply_json(w, 404, "Not Found", &error_json("no such job")),
    };
    match (method, sub) {
        ("GET", None) => reply_json(w, 200, "OK", &slot.record().to_json()),
        ("GET", Some("result.kv")) => {
            let rec = slot.record();
            match rec.state {
                JobState::Done => {
                    http::write_response(
                        w,
                        200,
                        "OK",
                        "text/plain",
                        rec.metrics_kv().as_bytes(),
                        &[],
                    )?;
                    Ok(200)
                }
                JobState::Failed => {
                    reply_json(w, 500, "Internal Server Error", &error_json(&rec.error))
                }
                _ => reply_json(w, 202, "Accepted", &rec.to_json()),
            }
        }
        ("GET", Some("events")) => stream_events(state, &slot, w),
        ("GET", Some("attribution")) => {
            let rec = slot.record();
            match (&rec.attr, rec.state) {
                (Some(attr), _) => reply_json(w, 200, "OK", &attr.report_json),
                (None, s) if !s.terminal() => reply_json(w, 202, "Accepted", &rec.to_json()),
                (None, _) => reply_json(
                    w,
                    404,
                    "Not Found",
                    &error_json(
                        "no attribution ledger for this job (start the daemon with --attribution and submit a replay job)",
                    ),
                ),
            }
        }
        ("GET", Some(_)) => reply_json(w, 404, "Not Found", &error_json("no such endpoint")),
        _ => method_not_allowed(w, "GET"),
    }
}

/// Stream the job's progress lines as they appear (chunked transfer, one
/// `progress.jsonl` line per chunk), ending once the job is terminal and
/// everything buffered has been sent, or at the stream deadline.
fn stream_events<W: Write>(
    state: &Arc<ServerState>,
    slot: &Arc<crate::state::JobSlot>,
    w: &mut W,
) -> io::Result<u16> {
    let mut cw = ChunkedWriter::begin(w, 200, "OK", "application/jsonl")?;
    let deadline = Instant::now() + state.cfg.events_timeout;
    let mut sent = 0usize;
    loop {
        let (new_lines, terminal) = {
            let mut g = lock(&slot.inner);
            loop {
                if g.events.len() > sent || g.record.state.terminal() {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let wait = (deadline - now).min(Duration::from_millis(200));
                let (guard, _) = slot
                    .cv
                    .wait_timeout(g, wait)
                    .unwrap_or_else(|e| e.into_inner());
                g = guard;
            }
            (g.events[sent..].to_vec(), g.record.state.terminal())
        };
        for line in &new_lines {
            cw.chunk(format!("{line}\n").as_bytes())?;
        }
        sent += new_lines.len();
        // Terminal was read under the same lock as the copy, so there is
        // nothing left to arrive once it is set.
        if terminal || Instant::now() >= deadline {
            break;
        }
    }
    cw.finish()?;
    Ok(200)
}
