//! Thread-pipelining scaffolding for the workload builders.
//!
//! Every parallelized loop in the suite follows the paper's Figure 4 shape:
//! fork at the top of the iteration (speculative), TSAG announcements, the
//! iteration body, and the exit test at the bottom — the thread whose
//! iteration satisfies the exit condition aborts its (wrong-thread-eligible)
//! successors and falls into the sequential code.  [`emit_sta_loop`] emits
//! that scaffold so each workload only writes its continuation, TSAG stage,
//! body and exit test.

use wec_isa::reg::Reg;
use wec_isa::ProgramBuilder;

/// Emit one parallel region.
///
/// * `tag` uniquifies labels (each region in a program needs its own);
/// * `fwd` are the continuation registers transferred at `fork` — the
///   closure `continuation` must leave their *next-iteration* values in
///   place (after copying this iteration's values to private registers);
/// * `tsag` announces target-store addresses (may be empty);
/// * `body` is the computation stage;
/// * `exit_continue` emits a branch to the provided label when the loop
///   *continues* (i.e. when this iteration is not the last valid one).
///
/// Code following this call is the sequential continuation after the region.
#[allow(clippy::too_many_arguments)]
pub fn emit_sta_loop(
    b: &mut ProgramBuilder,
    tag: &str,
    region: u16,
    fwd: &[Reg],
    continuation: impl FnOnce(&mut ProgramBuilder),
    tsag: impl FnOnce(&mut ProgramBuilder),
    body: impl FnOnce(&mut ProgramBuilder),
    exit_continue: impl FnOnce(&mut ProgramBuilder, &str),
) {
    let body_label = format!("{tag}_body");
    let done_label = format!("{tag}_done");
    let seq_label = format!("{tag}_seq");
    b.begin(region);
    b.label(&body_label);
    continuation(b);
    b.fork(fwd, &body_label);
    tsag(b);
    b.tsagdone();
    body(b);
    exit_continue(b, &done_label);
    b.abort_to(&seq_label);
    b.label(&done_label);
    b.thread_end();
    b.label(&seq_label);
}

/// Registers conventionally reserved for loop invariants (live across the
/// region via the `begin` snapshot). Workloads place base pointers and
/// bounds here.
pub const INV: [Reg; 10] = [
    Reg(16),
    Reg(17),
    Reg(18),
    Reg(19),
    Reg(20),
    Reg(21),
    Reg(22),
    Reg(23),
    Reg(24),
    Reg(25),
];

/// Conventional induction register (forwarded at fork).
pub const IND: Reg = Reg(1);
/// Second forwarded register for loops with two recurrences.
pub const IND2: Reg = Reg(2);
/// The thread's private copy of its iteration index.
pub const MY: Reg = Reg(3);
/// Private copy of the second recurrence.
pub const MY2: Reg = Reg(4);
/// Scratch registers for bodies.
pub const T0: Reg = Reg(5);
pub const T1: Reg = Reg(6);
pub const T2: Reg = Reg(7);
pub const T3: Reg = Reg(8);
pub const T4: Reg = Reg(9);
pub const T5: Reg = Reg(10);
pub const T6: Reg = Reg(11);
pub const T7: Reg = Reg(12);

/// Emit the canonical counted continuation: `my = i; i += 1`.
pub fn counted_continuation(b: &mut ProgramBuilder) {
    b.mv(MY, IND);
    b.addi(IND, IND, 1);
}

/// Emit the canonical counted exit test: continue while `i < bound_reg`.
pub fn counted_exit(bound: Reg) -> impl FnOnce(&mut ProgramBuilder, &str) {
    move |b: &mut ProgramBuilder, done: &str| {
        b.blt(IND, bound, done);
    }
}

/// Emit a sequential reduction of `n` doublewords starting at the address
/// in `base` into `check_cell` (the workload self-check), clobbering
/// T0..T4.  XOR-folds with a rotate so ordering errors are caught.
/// `base` must not be one of T0..T4 (asserted).
pub fn emit_checksum_reduce(
    b: &mut ProgramBuilder,
    tag: &str,
    base: Reg,
    n: i64,
    check_cell: wec_common::ids::Addr,
) {
    assert!(
        ![T0, T1, T2, T3, T4].contains(&base),
        "checksum base register would be clobbered"
    );
    let loop_label = format!("{tag}_ck");
    b.mv(T0, base);
    b.li(T1, n);
    b.li(T2, 0);
    b.label(&loop_label);
    b.ld(T3, T0, 0);
    // rotate-left-by-1 of the accumulator, then xor.
    b.slli(T4, T2, 1);
    b.srli(T2, T2, 63);
    b.or(T2, T2, T4);
    b.xor(T2, T2, T3);
    b.addi(T0, T0, 8);
    b.addi(T1, T1, -1);
    b.bne(T1, Reg::ZERO, &loop_label);
    b.la(T0, check_cell);
    b.ld(T3, T0, 0);
    // Rotate the previous checksum before folding, so repeated folds never
    // cancel (an even number of xors of the same value would).
    b.slli(T4, T3, 1);
    b.srli(T3, T3, 63);
    b.or(T3, T3, T4);
    b.xor(T2, T2, T3);
    b.sd(T2, T0, 0);
}

/// [`emit_checksum_reduce`], repeated `reps` times (the workloads' knob for
/// sizing their sequential phases to the paper's Table 2 fractions).
/// Clobbers T0..T5; `base` must not be T0..T5.
pub fn emit_checksum_reduce_reps(
    b: &mut ProgramBuilder,
    tag: &str,
    base: Reg,
    n: i64,
    reps: u32,
    check_cell: wec_common::ids::Addr,
) {
    assert!(!(0..=5).map(|i| Reg(5 + i)).any(|r| r == base));
    let rep_label = format!("{tag}_rep");
    b.li(T5, reps as i64);
    b.label(&rep_label);
    emit_checksum_reduce(b, tag, base, n, check_cell);
    b.addi(T5, T5, -1);
    b.bne(T5, Reg::ZERO, &rep_label);
}

/// A sequential pointer-chase reduction over a permutation array — the
/// cache-hostile, branchy sequential phase of the integer analogs.
///
/// The permutation is stored *pre-scaled* (index × 8, see [`scaled_perm`])
/// so the next load's address is a single `add` away from the loaded value.
/// The chase runs in segments: roughly every eighth node the segment-end
/// branch falls through to a bookkeeping block (a dependent multiply chain)
/// and the resume pointer is re-derived from its result.  That shape is the
/// paper's §3.1.1 wrong-path scenario in miniature:
///
/// * the segment-end branch is taken ~7/8 of the time, so the predictor
///   saturates "continue" and every segment end is a misprediction;
/// * the wrong (predicted) path is the next chase step, whose address is
///   ready when the branch resolves — exactly the paper's "ready but not
///   yet issued" load, which the wrong-path engine keeps running;
/// * the correct path re-reaches the same load only after the bookkeeping
///   chain, so the wrong-path fetch leads the demand by the bookkeeping
///   latency and turns the next L1 miss into a WEC hit.
///
/// Clobbers T0..T5; `perm` must be an invariant register.
pub fn emit_chase_reduce(
    b: &mut ProgramBuilder,
    tag: &str,
    perm: Reg,
    steps: i64,
    reps: u32,
    check_cell: wec_common::ids::Addr,
) {
    assert!(!(0..=5).map(|i| Reg(5 + i)).any(|r| r == perm));
    use wec_isa::inst::AluOp;
    let rep_l = format!("{tag}_rep");
    let step_l = format!("{tag}_step");
    let end_l = format!("{tag}_end");
    b.li(T5, reps as i64);
    b.label(&rep_l);
    b.li(T0, 0); // p (scaled)
    b.li(T1, steps);
    b.li(T2, 0); // acc
    b.label(&step_l);
    b.add(T3, perm, T0);
    b.ld(T3, T3, 0); // nxt (scaled)
    b.xor(T2, T2, T3);
    b.mv(T0, T3);
    b.addi(T1, T1, -1);
    b.beq(T1, Reg::ZERO, &end_l);
    // Segment end when the node index is a multiple of 8.
    b.andi(T4, T3, 56);
    b.bne(T4, Reg::ZERO, &step_l);
    // Bookkeeping: acc = (acc*37 ^ p)*41 + 7; the resume pointer is gated
    // on its result (a real chase re-derives it from the walked structure).
    b.alui(AluOp::Mul, T2, T2, 37);
    b.xor(T2, T2, T0);
    b.alui(AluOp::Mul, T2, T2, 41);
    b.addi(T2, T2, 7);
    b.and(T4, T2, Reg::ZERO);
    b.or(T0, T0, T4);
    b.j(&step_l);
    b.label(&end_l);
    // check = rotl(check, 1) ^ acc
    b.la(T3, check_cell);
    b.ld(T4, T3, 0);
    b.slli(T0, T4, 1);
    b.srli(T4, T4, 63);
    b.or(T4, T4, T0);
    b.xor(T4, T4, T2);
    b.sd(T4, T3, 0);
    b.addi(T5, T5, -1);
    b.bne(T5, Reg::ZERO, &rep_l);
}

/// Pre-scale a permutation for [`emit_chase_reduce`]'s data segment.
pub fn scaled_perm(perm: &[u64]) -> Vec<u64> {
    perm.iter().map(|&v| v * 8).collect()
}

/// Host reference of [`emit_chase_reduce`] (takes the *unscaled*
/// permutation).
pub fn chase_reduce_reference(mut prev: u64, perm: &[u64], steps: i64, reps: u32) -> u64 {
    for _ in 0..reps {
        let mut p = 0usize;
        let mut acc = 0u64;
        let mut t = steps;
        loop {
            let nxt = perm[p] * 8;
            acc ^= nxt;
            p = (nxt >> 3) as usize;
            t -= 1;
            if t == 0 {
                break;
            }
            if nxt & 56 != 0 {
                continue;
            }
            acc = (acc.wrapping_mul(37) ^ nxt)
                .wrapping_mul(41)
                .wrapping_add(7);
        }
        prev = prev.rotate_left(1) ^ acc;
    }
    prev
}

/// Host reference of [`emit_checksum_reduce_reps`].
pub fn checksum_reduce_reps_reference(mut prev: u64, data: &[u64], reps: u32) -> u64 {
    for _ in 0..reps {
        prev = checksum_reduce_reference(prev, data);
    }
    prev
}

/// Compute the reference value of [`emit_checksum_reduce`] on host data.
pub fn checksum_reduce_reference(prev: u64, data: &[u64]) -> u64 {
    let mut acc: u64 = 0;
    for &v in data {
        acc = acc.rotate_left(1) ^ v;
    }
    acc ^ prev.rotate_left(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wec_common::ids::Addr;
    use wec_core::config::ProcPreset;
    use wec_core::machine::{simulate, Machine};

    #[test]
    fn scaffold_runs_a_counted_loop() {
        let mut b = ProgramBuilder::new("scaffold");
        let n = 10i64;
        let out = b.alloc_zeroed_u64s(n as u64);
        let bound = INV[0];
        let ob = INV[1];
        b.li(bound, n);
        b.la(ob, out);
        b.li(IND, 0);
        emit_sta_loop(
            &mut b,
            "r1",
            1,
            &[IND],
            counted_continuation,
            |_| {},
            |b| {
                b.slli(T0, MY, 3);
                b.add(T0, ob, T0);
                b.addi(T1, MY, 100);
                b.sd(T1, T0, 0);
            },
            counted_exit(bound),
        );
        b.halt();
        let prog = b.build().unwrap();
        let mut m = Machine::new(ProcPreset::Orig.machine(2), &prog).unwrap();
        m.run().unwrap();
        for k in 0..n as u64 {
            assert_eq!(m.memory().read_u64(out + 8 * k).unwrap(), 100 + k);
        }
    }

    #[test]
    fn checksum_reduce_matches_reference() {
        let data: Vec<u64> = vec![3, 1, 4, 1, 5, 9, 2, 6];
        let mut b = ProgramBuilder::new("ck");
        let arr = b.alloc_u64s(&data);
        let cell = b.alloc_zeroed_u64s(1);
        b.la(INV[0], arr);
        emit_checksum_reduce(&mut b, "x", INV[0], data.len() as i64, cell);
        b.halt();
        let prog = b.build().unwrap();
        let r = simulate(ProcPreset::Orig.machine(1), &prog).unwrap();
        assert!(r.cycles > 0);
        let mut m = Machine::new(ProcPreset::Orig.machine(1), &prog).unwrap();
        m.run().unwrap();
        assert_eq!(
            m.memory().read_u64(cell).unwrap(),
            checksum_reduce_reference(0, &data)
        );
        let _ = Addr(0);
    }
}
