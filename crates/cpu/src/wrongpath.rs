//! The wrong-path load engine (paper §3.1.1).
//!
//! When a branch resolves as mispredicted, loads fetched beyond it are
//! squashed from the ROB — but, with wrong-path execution enabled, those
//! whose effective address is already computable keep going: they are parked
//! here and issued to the memory system (tagged as wrong execution, so the
//! WEC captures their fills) as ports become free.  They can never write a
//! register or raise a fault; an unmapped address simply drops the entry.

use std::collections::VecDeque;

use wec_common::ids::{Addr, Cycle};
use wec_common::stats::Counter;

use crate::env::{CoreEnv, MemIssue};

/// Queue of address-ready wrong-path loads awaiting a memory port.
pub struct WrongPathEngine {
    queue: VecDeque<(Addr, u64, u32)>,
    capacity: usize,
    /// Loads accepted into the engine at squash time.
    pub queued: Counter,
    /// Loads actually issued to the memory system.
    pub issued: Counter,
    /// Loads dropped because the queue was full.
    pub dropped: Counter,
}

impl WrongPathEngine {
    pub fn new(capacity: usize) -> Self {
        WrongPathEngine {
            queue: VecDeque::with_capacity(capacity),
            capacity,
            queued: Counter::default(),
            issued: Counter::default(),
            dropped: Counter::default(),
        }
    }

    /// Park a squashed, address-ready load.  `pc` is the squashed load's
    /// program counter, carried along so the eventual issue is attributed
    /// to the instruction that produced it.
    pub fn push(&mut self, addr: Addr, bytes: u64, pc: u32) {
        if self.queue.len() >= self.capacity {
            self.dropped.inc();
            return;
        }
        self.queue.push_back((addr, bytes, pc));
        self.queued.inc();
    }

    pub fn len(&self) -> usize {
        self.queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Issue queued loads through `env`, at most `max_issues` this cycle.
    /// Stops at the first structural rejection (no port this cycle).
    pub fn tick(&mut self, env: &mut dyn CoreEnv, now: Cycle, max_issues: u32) {
        for _ in 0..max_issues {
            let Some(&(addr, bytes, pc)) = self.queue.front() else {
                return;
            };
            match env.load(addr, bytes, now, true, pc) {
                MemIssue::Done { .. } => {
                    self.queue.pop_front();
                    self.issued.inc();
                }
                MemIssue::Retry => return,
                // Wrong execution never waits on run-time dependences; a
                // defensive drop in case the environment reports one.
                MemIssue::Blocked => {
                    self.queue.pop_front();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::MockEnv;
    use wec_isa::program::MemImage;

    #[test]
    fn issues_in_fifo_order() {
        let mut eng = WrongPathEngine::new(4);
        eng.push(Addr(0x100), 8, 0x40);
        eng.push(Addr(0x200), 8, 0x44);
        let mut env = MockEnv::new(MemImage::new());
        eng.tick(&mut env, Cycle(1), 2);
        assert!(eng.is_empty());
        assert_eq!(
            env.wrong_path_loads,
            vec![(Addr(0x100), 8), (Addr(0x200), 8)]
        );
        assert_eq!(eng.issued.get(), 2);
    }

    #[test]
    fn respects_per_cycle_issue_cap() {
        let mut eng = WrongPathEngine::new(8);
        for i in 0..4u64 {
            eng.push(Addr(i * 64), 8, 0);
        }
        let mut env = MockEnv::new(MemImage::new());
        eng.tick(&mut env, Cycle(0), 2);
        assert_eq!(eng.len(), 2);
    }

    #[test]
    fn drops_when_full() {
        let mut eng = WrongPathEngine::new(2);
        eng.push(Addr(0), 8, 0);
        eng.push(Addr(64), 8, 0);
        eng.push(Addr(128), 8, 0);
        assert_eq!(eng.len(), 2);
        assert_eq!(eng.dropped.get(), 1);
        assert_eq!(eng.queued.get(), 2);
    }
}
