#![allow(clippy::useless_format, clippy::format_in_format_args)] // diagnostic tool: clarity over style
//! Workload inspector: run one or all benchmark analogs under one preset
//! and print the headline metrics (a debugging / calibration aid).
//!
//! Usage: `wlinfo [bench-substring] [preset] [tus] [scale-units] [max-mcycles]`

use wec_core::config::ProcPreset;
use wec_workloads::{run_and_verify, Bench, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let filter = args.first().cloned().unwrap_or_default();
    let preset_name = args.get(1).cloned().unwrap_or_else(|| "orig".into());
    let tus: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let units: u32 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(1);
    let max_mcycles: u64 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(200);
    let preset = ProcPreset::ALL
        .into_iter()
        .find(|p| p.name() == preset_name)
        .expect("unknown preset");

    println!(
        "{:12} {:>10} {:>10} {:>8} {:>6} {:>9} {:>9} {:>8} {:>8} {:>8} {:>7}",
        "bench",
        "cycles",
        "instr",
        "par%",
        "ipc",
        "l1d_miss",
        "l1d_acc",
        "wrongacc",
        "wthreads",
        "mispred%",
        "check"
    );
    for bench in Bench::ALL {
        if !bench.name().contains(&filter) {
            continue;
        }
        let t0 = std::time::Instant::now();
        let w = bench.build(Scale { units });
        let mut cfg = preset.machine(tus);
        cfg.max_cycles = max_mcycles * 1_000_000;
        let max = cfg.max_cycles;
        match run_and_verify(&w, cfg) {
            Ok(r) => {
                let m = &r.metrics;
                println!(
                    "{:12} {:>10} {:>10} {:>7.1}% {:>6.2} {:>9} {:>9} {:>8} {:>8} {:>7.2}% {} ({:.1}s)",
                    w.name,
                    m.cycles,
                    m.correct_instructions(),
                    m.fraction_parallelized() * 100.0,
                    m.ipc(),
                    m.l1d.demand_misses,
                    m.l1d.demand_accesses,
                    m.l1d.wrong_accesses,
                    m.threads_marked_wrong,
                    m.mispredict_rate() * 100.0,
                    format!("r{} t{} s{}k p{}k w{}k side={} uwf={} upf={} pf={} wpq={}", m.regions, m.threads_started, m.sequential_instructions/1000, m.parallel_instructions/1000, m.wrong_instructions/1000, m.l1d.side_hits, m.l1d.useful_wrong_fetches, m.l1d.useful_prefetches, m.l1d.prefetches_issued, m.wrong_loads_dropped),
                    t0.elapsed().as_secs_f64(),
                );
            }
            Err(e) => {
                println!(
                    "{:12} ERROR: {e} ({:.1}s)",
                    w.name,
                    t0.elapsed().as_secs_f64()
                );
                // Re-run to just before the limit and dump machine state.
                let mut cfg2 = preset.machine(tus);
                cfg2.max_cycles = max;
                let mut m = wec_core::machine::Machine::new(cfg2, &w.program).unwrap();
                let _ = m.run();
                eprintln!("{}", m.debug_snapshot());
            }
        }
    }
}
