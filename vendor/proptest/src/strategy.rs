//! Strategies: composable random-value generators.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator behind every strategy (xoshiro256**).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeded from a test's fully-qualified name: every run of the same
    /// test generates the same cases.
    pub fn for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut s = [0u64; 4];
        for (i, w) in s.iter_mut().enumerate() {
            h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = h ^ (i as u64).wrapping_mul(0xA076_1D64_78BD_642F);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *w = z ^ (z >> 31);
        }
        if s == [0; 4] {
            s = [1, 2, 3, 4];
        }
        TestRng { s }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, bound)` (rejection sampling; `bound > 0`).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Uniform in `[lo, hi]` inclusive over the mapped-to-u64 domain.
    #[inline]
    fn between(&mut self, lo: u64, hi: u64) -> u64 {
        let span = hi.wrapping_sub(lo).wrapping_add(1);
        if span == 0 {
            self.next_u64()
        } else {
            lo + self.below(span)
        }
    }
}

/// A generator of values of one type.
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U: Debug, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase (for `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// `prop_map` adapter.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always the same value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty());
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

// ------------------------------------------------------------------
// any::<T>()
// ------------------------------------------------------------------

/// Types with a whole-domain uniform strategy.
pub trait Arbitrary: Sized + Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

#[derive(Clone, Copy, Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[inline]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ------------------------------------------------------------------
// Ranges as strategies
// ------------------------------------------------------------------

/// Integer types usable as range strategies.
pub trait RangeValue: Copy + Debug {
    fn to_u64(self) -> u64;
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_range_value_unsigned {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            #[inline]
            fn to_u64(self) -> u64 { self as u64 }
            #[inline]
            fn from_u64(v: u64) -> Self { v as $t }
        }
    )*};
}
impl_range_value_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_range_value_signed {
    ($($t:ty : $u:ty),*) => {$(
        impl RangeValue for $t {
            // Order-preserving offset-binary map into u64.
            #[inline]
            fn to_u64(self) -> u64 { ((self as $u) ^ (1 << (<$u>::BITS - 1))) as u64 }
            #[inline]
            fn from_u64(v: u64) -> Self { ((v as $u) ^ (1 << (<$u>::BITS - 1))) as $t }
        }
    )*};
}
impl_range_value_signed!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

impl<T: RangeValue> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        assert!(lo < hi, "empty range strategy");
        T::from_u64(rng.between(lo, hi - 1))
    }
}

impl<T: RangeValue> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
        assert!(lo <= hi, "empty range strategy");
        T::from_u64(rng.between(lo, hi))
    }
}

// ------------------------------------------------------------------
// Tuples of strategies
// ------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

// ------------------------------------------------------------------
// Collection sizes
// ------------------------------------------------------------------

/// Length distribution for `collection::vec`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    pub(crate) fn pick(&self, rng: &mut TestRng) -> usize {
        rng.between(self.lo as u64, self.hi_inclusive as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}
