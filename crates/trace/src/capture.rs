//! Capture: record a full-timing run's admitted access stream.

use std::cell::RefCell;
use std::rc::Rc;

use wec_core::machine::{Machine, RunResult};
use wec_core::tap::{AccessRecord, AccessSink};
use wec_core::MachineConfig;
use wec_workloads::Workload;

use crate::format::{Trace, TraceHeader, FORMAT_VERSION};
use crate::record::{TraceKind, TraceRecord};
use crate::stream::StreamEncoder;
use crate::TraceError;

/// An [`AccessSink`] that encodes records straight into per-TU streams —
/// no intermediate record buffer, so capture memory stays proportional to
/// the *compressed* trace size.
pub struct TraceRecorder {
    encoders: Vec<StreamEncoder>,
}

impl TraceRecorder {
    pub fn new(n_tus: usize) -> Self {
        TraceRecorder {
            encoders: (0..n_tus).map(|_| StreamEncoder::new()).collect(),
        }
    }

    pub fn records(&self) -> u64 {
        self.encoders.iter().map(StreamEncoder::records).sum()
    }

    /// Seal the streams into a [`Trace`] with the given capture identity.
    pub fn finish(self, meta: &CaptureMeta) -> Trace {
        let streams: Vec<_> = self
            .encoders
            .into_iter()
            .map(StreamEncoder::finish)
            .collect();
        let total_records = streams.iter().map(|s| s.records).sum();
        Trace {
            header: TraceHeader {
                format_version: FORMAT_VERSION,
                sim_revision: wec_core::SIM_REVISION,
                n_tus: streams.len() as u32,
                scale_units: meta.scale_units,
                bench: meta.bench.clone(),
                cfg_label: meta.cfg_label.clone(),
                total_records,
            },
            streams,
        }
    }
}

impl AccessSink for TraceRecorder {
    fn record(&mut self, rec: AccessRecord) {
        let kind = TraceKind::from_access(rec.kind).expect("machine taps never present prefetches");
        self.encoders[rec.tu as usize].push(&TraceRecord {
            cycle: rec.cycle,
            tu: rec.tu,
            pc: rec.pc,
            addr: rec.addr,
            kind,
            squashed: rec.kind.is_wrong(),
        });
    }
}

/// Capture identity recorded in the trace header.
#[derive(Clone, Debug)]
pub struct CaptureMeta {
    /// Workload name, e.g. `"181.mcf"`.
    pub bench: String,
    /// Workload scale (`Scale::units`).
    pub scale_units: u32,
    /// Configuration label of the captured machine.
    pub cfg_label: String,
}

/// Run `w` under `cfg` with a recorder attached, verify the workload
/// self-check (exactly as `run_and_verify` does), and return both the
/// timing result and the captured trace.  Attaching the recorder does not
/// perturb the run: the metrics are bit-identical to an untraced run.
pub fn capture_run(
    w: &Workload,
    cfg: MachineConfig,
    meta: &CaptureMeta,
) -> Result<(RunResult, Trace), TraceError> {
    let n_tus = cfg.n_tus;
    let mut m = Machine::new(cfg, &w.program)?;
    let recorder = Rc::new(RefCell::new(TraceRecorder::new(n_tus)));
    m.attach_access_sink(recorder.clone());
    let result = m.run()?;
    let got = m.memory().read_u64(w.check_addr)?;
    if got != w.expected_check {
        return Err(TraceError::Sim(wec_common::SimError::Config(format!(
            "{} self-check mismatch: got {got:#x}, want {:#x}",
            w.name, w.expected_check
        ))));
    }
    drop(m);
    let recorder = Rc::try_unwrap(recorder)
        .map_err(|_| TraceError::Corrupt("recorder still shared after run".into()))?
        .into_inner();
    Ok((result, recorder.finish(meta)))
}
