//! One generator per table/figure of the paper's evaluation (§5).
//!
//! Each function returns a [`Table`] whose rows and columns mirror the
//! paper's plot: benchmarks down the side, configurations across the top,
//! the paper's metric in the cells (speedup %, normalized execution time,
//! or raw counts).  The `average` row uses the paper's equal-importance
//! average (§5, citing Lilja).

use wec_common::stats::{
    equal_importance_speedup, normalized_time, pct_change, pct_reduction, relative_speedup_pct,
};
use wec_common::table::Table;
use wec_core::config::ProcPreset;

use crate::runner::{CfgKey, Runner, Suite};

/// The non-baseline presets of Figure 11, in the paper's legend order.
pub const FIG11_PRESETS: [ProcPreset; 7] = [
    ProcPreset::Vc,
    ProcPreset::Wp,
    ProcPreset::Wth,
    ProcPreset::WthWp,
    ProcPreset::WthWpVc,
    ProcPreset::WthWpWec,
    ProcPreset::Nlp,
];

fn bench_rows(suite: &Suite) -> Vec<(usize, &'static str)> {
    suite
        .workloads
        .iter()
        .enumerate()
        .map(|(i, w)| (i, w.name))
        .collect()
}

/// Append the equal-importance average row: `pairs[bench][col] = (base, new)`.
fn push_average_speedup_row(t: &mut Table, pairs: &[Vec<(u64, u64)>]) {
    let cols = pairs[0].len();
    let avgs: Vec<f64> = (0..cols)
        .map(|c| {
            let col: Vec<(u64, u64)> = pairs.iter().map(|row| row[c]).collect();
            (equal_importance_speedup(&col) - 1.0) * 100.0
        })
        .collect();
    t.row_f64("average", &avgs);
}

/// Table 1: the manual program transformations used per benchmark.
pub fn table1(suite: &Suite) -> Table {
    let transforms = ["loop coalescing", "loop unrolling", "statement reordering"];
    let mut header = vec!["transformation"];
    header.extend(suite.workloads.iter().map(|w| w.name));
    let mut t = Table::new(
        "Table 1 — program transformations used in manual parallelization",
        &header,
    );
    for tr in transforms {
        let mut row = vec![tr.to_string()];
        for w in &suite.workloads {
            row.push(if w.transforms.contains(&tr) { "X" } else { "" }.to_string());
        }
        t.row(row);
    }
    t
}

/// Table 2: dynamic instruction counts and the fraction parallelized
/// (measured on the `orig` 8-TU machine).
pub fn table2(runner: &Runner) -> Table {
    let suite = runner.suite();
    let key = CfgKey::paper(ProcPreset::Orig, 8);
    runner.warm_all_benches(&[key]);
    let mut t = Table::new(
        "Table 2 — benchmark analogs: dynamic instructions and parallel fraction",
        &[
            "benchmark",
            "suite/type",
            "input analog",
            "whole (Kinstr)",
            "targeted loops (Kinstr)",
            "fraction parallelized",
        ],
    );
    for (i, w) in suite.workloads.iter().enumerate() {
        let m = runner.metrics(i, key);
        t.row(vec![
            w.name.to_string(),
            w.suite.to_string(),
            w.input.to_string(),
            format!("{:.1}", m.correct_instructions() as f64 / 1e3),
            format!("{:.1}", m.parallel_instructions as f64 / 1e3),
            format!("{:.1}%", m.fraction_parallelized() * 100.0),
        ]);
    }
    t
}

/// Table 3: the per-TU simulation parameters of the baseline sweep.
pub fn table3() -> Table {
    let mut t = Table::new(
        "Table 3 — simulation parameters per thread unit",
        &[
            "# of TUs",
            "issue rate",
            "reorder buffer",
            "INT ALU",
            "INT MULT",
            "FP ALU",
            "FP MULT",
            "L1 data cache (KB)",
        ],
    );
    // The paper's leftmost column is the 1-TU single-issue reference.
    let mut cols: Vec<(usize, CfgKey)> = vec![(1, CfgKey::single_issue())];
    for tus in [1usize, 2, 4, 8, 16] {
        cols.push((tus, CfgKey::table3(tus)));
    }
    for (tus, key) in cols {
        let cfg = key.build();
        t.row(vec![
            tus.to_string(),
            cfg.core.width.to_string(),
            cfg.core.rob_size.to_string(),
            cfg.core.int_alu.to_string(),
            cfg.core.int_mul.to_string(),
            cfg.core.fp_alu.to_string(),
            cfg.core.fp_mul.to_string(),
            (cfg.l1d.capacity_bytes / 1024).to_string(),
        ]);
    }
    t
}

/// Figure 8: speedup of the parallelized portions under the Table 3
/// configurations, relative to a single-thread single-issue processor.
pub fn fig08(runner: &Runner) -> Table {
    let suite = runner.suite();
    let base = CfgKey::single_issue();
    let sweep: Vec<(String, CfgKey)> = [1usize, 2, 4, 8, 16]
        .iter()
        .map(|&tus| (format!("{tus}TU x {}-issue", 16 / tus), CfgKey::table3(tus)))
        .collect();
    let mut keys: Vec<CfgKey> = sweep.iter().map(|(_, k)| *k).collect();
    keys.push(base);
    runner.warm_all_benches(&keys);

    let mut header = vec!["benchmark".to_string()];
    header.extend(sweep.iter().map(|(n, _)| n.clone()));
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        "Figure 8 — parallel-region speedup vs 1TU/1-issue (x)",
        &hdr,
    );
    let mut pairs: Vec<Vec<(u64, u64)>> = Vec::new();
    for (i, name) in bench_rows(suite) {
        let base_m = runner.metrics(i, base);
        let mut vals = Vec::new();
        let mut row_pairs = Vec::new();
        for (_, key) in &sweep {
            let m = runner.metrics(i, *key);
            vals.push(base_m.region_cycles as f64 / m.region_cycles as f64);
            row_pairs.push((base_m.region_cycles, m.region_cycles));
        }
        t.row_f64(name, &vals);
        pairs.push(row_pairs);
    }
    // Average row in the same unit (x speedup).
    let cols = pairs[0].len();
    let avgs: Vec<f64> = (0..cols)
        .map(|c| {
            let col: Vec<(u64, u64)> = pairs.iter().map(|r| r[c]).collect();
            equal_importance_speedup(&col)
        })
        .collect();
    t.row_f64("average", &avgs);
    t
}

/// Figure 9: whole-program speedup of `orig` (2–16 TU) and `wth-wp-wec`
/// (1–16 TU) over the single-TU `orig` machine.
pub fn fig09(runner: &Runner) -> Table {
    let suite = runner.suite();
    let base = CfgKey::paper(ProcPreset::Orig, 1);
    let tus = [1usize, 2, 4, 8, 16];
    let mut columns: Vec<(String, CfgKey)> = Vec::new();
    for &n in &tus[1..] {
        columns.push((format!("{n}TU orig"), CfgKey::paper(ProcPreset::Orig, n)));
    }
    for &n in &tus {
        columns.push((format!("{n}TU wec"), CfgKey::paper(ProcPreset::WthWpWec, n)));
    }
    let mut keys: Vec<CfgKey> = columns.iter().map(|(_, k)| *k).collect();
    keys.push(base);
    runner.warm_all_benches(&keys);

    let mut header = vec!["benchmark".to_string()];
    header.extend(columns.iter().map(|(n, _)| n.clone()));
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        "Figure 9 — whole-program relative speedup vs orig 1TU (%)",
        &hdr,
    );
    let mut pairs = Vec::new();
    for (i, name) in bench_rows(suite) {
        let b = runner.metrics(i, base).cycles;
        let mut vals = Vec::new();
        let mut row_pairs = Vec::new();
        for (_, key) in &columns {
            let c = runner.metrics(i, *key).cycles;
            vals.push(relative_speedup_pct(b, c));
            row_pairs.push((b, c));
        }
        t.row_f64(name, &vals);
        pairs.push(row_pairs);
    }
    push_average_speedup_row(&mut t, &pairs);
    t
}

/// Figure 10: `wth-wp-wec` vs `orig` at matched TU counts.
pub fn fig10(runner: &Runner) -> Table {
    let suite = runner.suite();
    let tus = [1usize, 2, 4, 8, 16];
    let mut keys = Vec::new();
    for &n in &tus {
        keys.push(CfgKey::paper(ProcPreset::Orig, n));
        keys.push(CfgKey::paper(ProcPreset::WthWpWec, n));
    }
    runner.warm_all_benches(&keys);

    let mut header = vec!["benchmark".to_string()];
    header.extend(tus.iter().map(|n| format!("{n}TU wec")));
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        "Figure 10 — wth-wp-wec relative speedup vs orig at equal TU count (%)",
        &hdr,
    );
    let mut pairs = Vec::new();
    for (i, name) in bench_rows(suite) {
        let mut vals = Vec::new();
        let mut row_pairs = Vec::new();
        for &n in &tus {
            let b = runner.metrics(i, CfgKey::paper(ProcPreset::Orig, n)).cycles;
            let c = runner
                .metrics(i, CfgKey::paper(ProcPreset::WthWpWec, n))
                .cycles;
            vals.push(relative_speedup_pct(b, c));
            row_pairs.push((b, c));
        }
        t.row_f64(name, &vals);
        pairs.push(row_pairs);
    }
    push_average_speedup_row(&mut t, &pairs);
    t
}

/// Figure 11: every configuration vs `orig`, all at 8 TUs.
pub fn fig11(runner: &Runner) -> Table {
    let suite = runner.suite();
    let base = CfgKey::paper(ProcPreset::Orig, 8);
    let mut keys = vec![base];
    keys.extend(FIG11_PRESETS.iter().map(|&p| CfgKey::paper(p, 8)));
    runner.warm_all_benches(&keys);

    let mut header = vec!["benchmark".to_string()];
    header.extend(FIG11_PRESETS.iter().map(|p| p.name().to_string()));
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        "Figure 11 — relative speedup vs orig, 8 thread units (%)",
        &hdr,
    );
    let mut pairs = Vec::new();
    for (i, name) in bench_rows(suite) {
        let b = runner.metrics(i, base).cycles;
        let mut vals = Vec::new();
        let mut row_pairs = Vec::new();
        for &p in &FIG11_PRESETS {
            let c = runner.metrics(i, CfgKey::paper(p, 8)).cycles;
            vals.push(relative_speedup_pct(b, c));
            row_pairs.push((b, c));
        }
        t.row_f64(name, &vals);
        pairs.push(row_pairs);
    }
    push_average_speedup_row(&mut t, &pairs);
    t
}

/// Figure 12: L1 associativity sensitivity (direct-mapped vs 4-way) of the
/// vc / wth-wp-vc / wth-wp-wec configurations, each against `orig` with the
/// same associativity.
pub fn fig12(runner: &Runner) -> Table {
    let suite = runner.suite();
    let presets = [ProcPreset::Vc, ProcPreset::WthWpVc, ProcPreset::WthWpWec];
    let mut keys = Vec::new();
    for ways in [1u8, 4] {
        let mut k = CfgKey::paper(ProcPreset::Orig, 8);
        k.l1_ways = ways;
        keys.push(k);
        for &p in &presets {
            let mut k = CfgKey::paper(p, 8);
            k.l1_ways = ways;
            keys.push(k);
        }
    }
    runner.warm_all_benches(&keys);

    let mut header = vec!["benchmark".to_string()];
    for ways in [1, 4] {
        for p in presets {
            header.push(format!("{}way {}", ways, p.name()));
        }
    }
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        "Figure 12 — relative speedup vs orig at the same L1 associativity (%)",
        &hdr,
    );
    let mut pairs = Vec::new();
    for (i, name) in bench_rows(suite) {
        let mut vals = Vec::new();
        let mut row_pairs = Vec::new();
        for ways in [1u8, 4] {
            let mut base = CfgKey::paper(ProcPreset::Orig, 8);
            base.l1_ways = ways;
            let b = runner.metrics(i, base).cycles;
            for &p in &presets {
                let mut k = CfgKey::paper(p, 8);
                k.l1_ways = ways;
                let c = runner.metrics(i, k).cycles;
                vals.push(relative_speedup_pct(b, c));
                row_pairs.push((b, c));
            }
        }
        t.row_f64(name, &vals);
        pairs.push(row_pairs);
    }
    push_average_speedup_row(&mut t, &pairs);
    t
}

/// Figure 13: L1 size sweep (4/8/16/32 KB), normalized execution time
/// against the 4 KB `orig` machine.
pub fn fig13(runner: &Runner) -> Table {
    let suite = runner.suite();
    let sizes = [4u16, 8, 16, 32];
    let mut keys = Vec::new();
    for &kb in &sizes {
        for p in [ProcPreset::Orig, ProcPreset::WthWpWec] {
            let mut k = CfgKey::paper(p, 8);
            k.l1_kb = kb;
            keys.push(k);
        }
    }
    runner.warm_all_benches(&keys);

    let mut header = vec!["benchmark".to_string()];
    for p in ["orig", "wth-wp-wec"] {
        for kb in sizes {
            header.push(format!("{p} {kb}k"));
        }
    }
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        "Figure 13 — normalized execution time vs orig 4KB L1 (lower is faster)",
        &hdr,
    );
    for (i, name) in bench_rows(suite) {
        let mut base = CfgKey::paper(ProcPreset::Orig, 8);
        base.l1_kb = 4;
        let b = runner.metrics(i, base).cycles;
        let mut vals = Vec::new();
        for p in [ProcPreset::Orig, ProcPreset::WthWpWec] {
            for &kb in &sizes {
                let mut k = CfgKey::paper(p, 8);
                k.l1_kb = kb;
                vals.push(normalized_time(b, runner.metrics(i, k).cycles));
            }
        }
        t.row_f64(name, &vals);
    }
    t
}

/// Figure 14: L2 size sweep (128/256/512 KB), normalized execution time
/// against the 128 KB `orig` machine.
pub fn fig14(runner: &Runner) -> Table {
    let suite = runner.suite();
    let sizes = [128u16, 256, 512];
    let mut keys = Vec::new();
    for &kb in &sizes {
        for p in [ProcPreset::Orig, ProcPreset::WthWpWec] {
            let mut k = CfgKey::paper(p, 8);
            k.l2_kb = kb;
            keys.push(k);
        }
    }
    runner.warm_all_benches(&keys);

    let mut header = vec!["benchmark".to_string()];
    for p in ["orig", "wth-wp-wec"] {
        for kb in sizes {
            header.push(format!("{p} {kb}k"));
        }
    }
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        "Figure 14 — normalized execution time vs orig 128KB L2 (lower is faster)",
        &hdr,
    );
    for (i, name) in bench_rows(suite) {
        let mut base = CfgKey::paper(ProcPreset::Orig, 8);
        base.l2_kb = 128;
        let b = runner.metrics(i, base).cycles;
        let mut vals = Vec::new();
        for p in [ProcPreset::Orig, ProcPreset::WthWpWec] {
            for &kb in &sizes {
                let mut k = CfgKey::paper(p, 8);
                k.l2_kb = kb;
                vals.push(normalized_time(b, runner.metrics(i, k).cycles));
            }
        }
        t.row_f64(name, &vals);
    }
    t
}

/// Figure 15: WEC size sensitivity (4/8/16 entries) against equally sized
/// victim caches, vs the default `orig`.
pub fn fig15(runner: &Runner) -> Table {
    let suite = runner.suite();
    let sizes = [4u8, 8, 16];
    let presets = [ProcPreset::Vc, ProcPreset::WthWpVc, ProcPreset::WthWpWec];
    let base = CfgKey::paper(ProcPreset::Orig, 8);
    let mut keys = vec![base];
    for &p in &presets {
        for &n in &sizes {
            let mut k = CfgKey::paper(p, 8);
            k.side_entries = n;
            keys.push(k);
        }
    }
    runner.warm_all_benches(&keys);

    let mut header = vec!["benchmark".to_string()];
    for p in presets {
        for n in sizes {
            header.push(format!("{} {n}", p.name()));
        }
    }
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        "Figure 15 — relative speedup vs orig as the side-structure size varies (%)",
        &hdr,
    );
    let mut pairs = Vec::new();
    for (i, name) in bench_rows(suite) {
        let b = runner.metrics(i, base).cycles;
        let mut vals = Vec::new();
        let mut row_pairs = Vec::new();
        for &p in &presets {
            for &n in &sizes {
                let mut k = CfgKey::paper(p, 8);
                k.side_entries = n;
                let c = runner.metrics(i, k).cycles;
                vals.push(relative_speedup_pct(b, c));
                row_pairs.push((b, c));
            }
        }
        t.row_f64(name, &vals);
        pairs.push(row_pairs);
    }
    push_average_speedup_row(&mut t, &pairs);
    t
}

/// Figure 16: the WEC against next-line prefetching with equal buffer
/// sizes (8/16/32 entries), vs the default `orig`.
pub fn fig16(runner: &Runner) -> Table {
    let suite = runner.suite();
    let sizes = [8u8, 16, 32];
    let presets = [ProcPreset::Nlp, ProcPreset::WthWpWec];
    let base = CfgKey::paper(ProcPreset::Orig, 8);
    let mut keys = vec![base];
    for &p in &presets {
        for &n in &sizes {
            let mut k = CfgKey::paper(p, 8);
            k.side_entries = n;
            keys.push(k);
        }
    }
    runner.warm_all_benches(&keys);

    let mut header = vec!["benchmark".to_string()];
    for p in presets {
        for n in sizes {
            header.push(format!("{} {n}", p.name()));
        }
    }
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        "Figure 16 — WEC vs next-line prefetching at equal buffer sizes (%)",
        &hdr,
    );
    let mut pairs = Vec::new();
    for (i, name) in bench_rows(suite) {
        let b = runner.metrics(i, base).cycles;
        let mut vals = Vec::new();
        let mut row_pairs = Vec::new();
        for &p in &presets {
            for &n in &sizes {
                let mut k = CfgKey::paper(p, 8);
                k.side_entries = n;
                let c = runner.metrics(i, k).cycles;
                vals.push(relative_speedup_pct(b, c));
                row_pairs.push((b, c));
            }
        }
        t.row_f64(name, &vals);
        pairs.push(row_pairs);
    }
    push_average_speedup_row(&mut t, &pairs);
    t
}

/// Figure 17: L1 data-cache traffic increase and miss-count reduction of
/// `wth-wp-wec` relative to `orig` (8 TUs).
pub fn fig17(runner: &Runner) -> Table {
    let suite = runner.suite();
    let base = CfgKey::paper(ProcPreset::Orig, 8);
    let wec = CfgKey::paper(ProcPreset::WthWpWec, 8);
    runner.warm_all_benches(&[base, wec]);
    let mut t = Table::new(
        "Figure 17 — L1 traffic increase and miss reduction, wth-wp-wec vs orig (%)",
        &[
            "benchmark",
            "traffic increase",
            "miss reduction (to L2)",
            "wec side hits",
            "useful wrong fetches",
        ],
    );
    let mut traffic = Vec::new();
    let mut reduction = Vec::new();
    for (i, name) in bench_rows(suite) {
        let b = runner.metrics(i, base);
        let w = runner.metrics(i, wec);
        let tr = pct_change(b.l1d.traffic(), w.l1d.traffic());
        let red = pct_reduction(b.l1d.misses_to_next_level, w.l1d.misses_to_next_level);
        traffic.push(tr);
        reduction.push(red);
        t.row(vec![
            name.to_string(),
            format!("{tr:.1}%"),
            format!("{red:.1}%"),
            w.l1d.side_hits.to_string(),
            w.l1d.useful_wrong_fetches.to_string(),
        ]);
    }
    let n = traffic.len() as f64;
    t.row(vec![
        "average".into(),
        format!("{:.1}%", traffic.iter().sum::<f64>() / n),
        format!("{:.1}%", reduction.iter().sum::<f64>() / n),
        "".into(),
        "".into(),
    ]);
    t
}

/// All tables/figures in paper order.
pub fn all(runner: &Runner) -> Vec<Table> {
    vec![
        table1(runner.suite()),
        table2(runner),
        table3(),
        fig08(runner),
        fig09(runner),
        fig10(runner),
        fig11(runner),
        fig12(runner),
        fig13(runner),
        fig14(runner),
        fig15(runner),
        fig16(runner),
        fig17(runner),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use wec_workloads::Scale;

    #[test]
    fn table3_matches_the_paper() {
        let t = table3();
        assert_eq!(t.n_rows(), 6);
        // 16TU × 1-issue row: 8-entry ROB, 2KB L1.
        assert_eq!(t.cell(5, 0), Some("16"));
        assert_eq!(t.cell(5, 1), Some("1"));
        assert_eq!(t.cell(5, 2), Some("8"));
        assert_eq!(t.cell(5, 7), Some("2"));
        // 1TU × 16-issue row: 128-entry ROB, 32KB L1.
        assert_eq!(t.cell(1, 1), Some("16"));
        assert_eq!(t.cell(1, 2), Some("128"));
        assert_eq!(t.cell(1, 7), Some("32"));
    }

    #[test]
    fn table1_marks_every_benchmark() {
        let suite = Suite::build(Scale::SMOKE);
        let t = table1(&suite);
        assert_eq!(t.n_rows(), 3);
    }
}
