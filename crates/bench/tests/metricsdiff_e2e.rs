//! End-to-end drift detection: two runs of the same sweep (one cold, one
//! replayed from the result cache) must produce identical `run.json`
//! metrics and a clean `metricsdiff` exit; a perturbed manifest must be
//! caught and named.
//!
//! The sweeps run in-process (the figure-17 pair of configurations at
//! SMOKE scale); only the cheap `metricsdiff` binary is spawned.

use std::path::{Path, PathBuf};
use std::process::Command;

use wec_bench::experiments;
use wec_bench::progress::Progress;
use wec_bench::runner::{Runner, Suite};
use wec_telemetry::schema;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wec-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One fig17 sweep against the shared scratch result cache; returns the
/// run directory containing `progress.jsonl` + `run.json`.
fn sweep(suite: &Suite, cache_dir: &Path, run_dir: &Path) {
    let mut runner = Runner::with_disk_dir(suite, cache_dir.to_path_buf());
    let progress = std::sync::Arc::new(Progress::new(Some(run_dir), false).unwrap());
    runner.set_observer(progress.clone());
    let table = experiments::fig17(&runner);
    assert!(!table.render().is_empty());
    progress
        .write_manifest(&runner, 0, 1.0, &["fig17".to_string()])
        .unwrap();
}

fn metricsdiff(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_metricsdiff"))
        .args(args)
        .output()
        .expect("spawn metricsdiff");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    (out.status.code().expect("exit code"), stdout)
}

#[test]
fn identical_sweeps_diff_clean_and_perturbation_is_caught() {
    let root = scratch("metricsdiff-e2e");
    let cache = root.join("cache");
    let (run_a, run_b) = (root.join("a"), root.join("b"));

    let suite = Suite::build(wec_workloads::Scale::SMOKE);
    sweep(&suite, &cache, &run_a); // cold: fills the result cache
    sweep(&suite, &cache, &run_b); // warm: replays from the store

    // Both observability artifacts validate against the published schemas.
    for dir in [&run_a, &run_b] {
        let progress = std::fs::read_to_string(dir.join("progress.jsonl")).unwrap();
        let r = schema::validate_progress_jsonl(&progress).unwrap();
        assert!(r.finishes >= 12, "fig17 is 2 configs x 6 benches");
        let manifest = std::fs::read_to_string(dir.join("run.json")).unwrap();
        assert!(schema::validate_run_json(&manifest).unwrap() >= 12);
    }
    // The cold run simulated; the warm run must be disk hits only.
    let b_manifest = std::fs::read_to_string(run_b.join("run.json")).unwrap();
    assert!(b_manifest.contains("\"cold\":0"), "warm run re-simulated");

    let a_json = run_a.join("run.json");
    let b_json = run_b.join("run.json");
    let report_json = root.join("report.json");

    // Zero drift between the cold and the cache-replayed run.
    let (code, stdout) = metricsdiff(&[
        a_json.to_str().unwrap(),
        b_json.to_str().unwrap(),
        "--json",
        report_json.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "identical sweeps must not drift:\n{stdout}");
    assert!(stdout.contains("No drift detected"));
    assert!(std::fs::read_to_string(&report_json)
        .unwrap()
        .contains("\"clean\":true"));

    // Run.json also diffs clean against the raw result-cache snapshots
    // when compared to itself (directory loader smoke test).
    let (code, _) = metricsdiff(&[cache.to_str().unwrap(), cache.to_str().unwrap()]);
    assert_eq!(code, 0);

    // Perturb one counter in B: drift must be detected and named.
    let perturbed =
        std::fs::read_to_string(&b_json)
            .unwrap()
            .replacen("\"cycles\":", "\"cycles\":9", 1);
    let c_json = root.join("c.json");
    std::fs::write(&c_json, perturbed).unwrap();
    let (code, stdout) = metricsdiff(&[a_json.to_str().unwrap(), c_json.to_str().unwrap()]);
    assert_eq!(code, 1, "perturbed manifest must drift");
    assert!(stdout.contains("drift(s) detected"));
    assert!(stdout.contains("cycles"), "drifting metric must be named");

    // Usage errors are distinct from drift.
    let (code, _) = metricsdiff(&[]);
    assert_eq!(code, 2);

    let _ = std::fs::remove_dir_all(&root);
}
