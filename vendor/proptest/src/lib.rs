//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x API this workspace uses —
//! `proptest!`, `prop_assert*`, `prop_oneof!`, `Just`, `any`, ranges and
//! tuples as strategies, `prop_map`, `collection::vec`, `sample::select`,
//! and `ProptestConfig::with_cases` — on a deterministic per-test RNG.
//!
//! Differences from upstream, deliberately accepted:
//! * no shrinking — a failing case reports its inputs (via the panic
//!   message of the failing assertion) but is not minimized;
//! * no failure persistence (`proptest-regressions` files are ignored);
//! * case generation is seeded from the test's name, so runs are
//!   reproducible across invocations and hosts, and `PROPTEST_CASES`
//!   overrides the case count globally.

pub mod strategy;

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

pub mod test_runner {
    /// Runner configuration (only the case count is honored).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }

        /// Effective case count: `PROPTEST_CASES` overrides the configured
        /// value when set.
        pub fn effective_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(self.cases)
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; this stand-in has no shrinking, so
            // keep full default coverage.
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod collection {
    use crate::strategy::{SizeRange, Strategy, TestRng};

    /// Strategy for a `Vec` whose length is drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::{Strategy, TestRng};

    /// Strategy choosing uniformly from a fixed set of values.
    #[derive(Clone, Debug)]
    pub struct Select<T> {
        choices: Vec<T>,
    }

    pub fn select<T: Clone + std::fmt::Debug>(choices: Vec<T>) -> Select<T> {
        assert!(!choices.is_empty(), "select over an empty set");
        Select { choices }
    }

    impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.choices[rng.below(self.choices.len() as u64) as usize].clone()
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0u64..100, v in proptest::collection::vec(any::<u8>(), 1..9)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(@cfg($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let cases = config.effective_cases();
            let mut rng =
                $crate::strategy::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                // Render inputs before the body runs: the body may consume
                // them, and they must be reportable on failure (no
                // shrinking — the raw case is the diagnostic).
                let mut __inputs = String::new();
                $(__inputs.push_str(&format!(
                    "\n    {} = {:?}", stringify!($arg), $arg));)+
                let result: ::std::result::Result<(), String> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if let Err(msg) = result {
                    panic!("proptest case {case}/{cases} failed: {msg}\n  inputs:{__inputs}");
                }
            }
        }
        $crate::__proptest_items!(@cfg($cfg) $($rest)*);
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!(
                "assertion failed: {} ({})", stringify!($cond), format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err(format!("assertion failed: {:?} == {:?}", a, b));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err(format!(
                "assertion failed: {:?} == {:?} ({})", a, b, format!($($fmt)+)));
        }
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return Err(format!("assertion failed: {:?} != {:?}", a, b));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return Err(format!(
                "assertion failed: {:?} != {:?} ({})", a, b, format!($($fmt)+)));
        }
    }};
}

/// Reject a generated case (counts as passed; this stand-in does not
/// replenish rejected cases).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Ok(());
        }
    };
}

/// Weighted-less union of strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum E {
        A(u8),
        B,
    }

    proptest! {
        #[test]
        fn ranges_and_vecs(x in 3u64..10, v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn oneof_map_select(
            e in prop_oneof![
                (0u8..4).prop_map(E::A),
                Just(E::B),
            ],
            pick in crate::sample::select(vec![1u32, 5, 9]),
        ) {
            match e {
                E::A(n) => prop_assert!(n < 4),
                E::B => {}
            }
            prop_assert!([1, 5, 9].contains(&pick));
        }

        #[test]
        fn inclusive_and_signed(a in -8i32..=8, b in any::<i64>()) {
            prop_assert!((-8..=8).contains(&a));
            let _ = b;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::{Strategy, TestRng};
        let s = (0u64..1000, crate::collection::vec(any::<u16>(), 1..6));
        let mut r1 = TestRng::for_test("x");
        let mut r2 = TestRng::for_test("x");
        for _ in 0..64 {
            assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        }
    }
}
