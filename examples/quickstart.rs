//! Quickstart: build one benchmark analog, run it on the baseline
//! superthreaded machine and on the machine with the Wrong Execution Cache,
//! and compare.
//!
//! ```text
//! cargo run --release -p wec-examples --bin quickstart [bench] [tus]
//! ```

use wec_core::config::ProcPreset;
use wec_workloads::{run_and_verify, Bench, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let filter = args.first().map(|s| s.as_str()).unwrap_or("mcf");
    let tus: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let bench = Bench::ALL
        .into_iter()
        .find(|b| b.name().contains(filter))
        .expect("unknown benchmark (try vpr/gzip/mcf/parser/equake/mesa)");

    println!("building {} …", bench.name());
    let w = bench.build(Scale::SMOKE);

    println!(
        "running on {tus} thread units, each an 8-issue out-of-order core,\n\
         8KB direct-mapped L1D + 8-entry side structure, 512KB shared L2\n"
    );

    let base = run_and_verify(&w, ProcPreset::Orig.machine(tus)).expect("orig run failed");
    let wec = run_and_verify(&w, ProcPreset::WthWpWec.machine(tus)).expect("wec run failed");
    let (b, c) = (&base.metrics, &wec.metrics);

    println!("{:32} {:>14} {:>14}", "", "orig", "wth-wp-wec");
    let row = |k: &str, a: String, b: String| println!("{k:32} {a:>14} {b:>14}");
    row("cycles", b.cycles.to_string(), c.cycles.to_string());
    row(
        "committed instructions",
        b.correct_instructions().to_string(),
        c.correct_instructions().to_string(),
    );
    row("IPC", format!("{:.3}", b.ipc()), format!("{:.3}", c.ipc()));
    row(
        "L1D demand misses",
        b.l1d.demand_misses.to_string(),
        c.l1d.demand_misses.to_string(),
    );
    row(
        "L1D misses served by L2/memory",
        b.l1d.misses_to_next_level.to_string(),
        c.l1d.misses_to_next_level.to_string(),
    );
    row(
        "wrong-execution loads",
        b.l1d.wrong_accesses.to_string(),
        c.l1d.wrong_accesses.to_string(),
    );
    row(
        "correct hits on wrong fetches",
        b.l1d.useful_wrong_fetches.to_string(),
        c.l1d.useful_wrong_fetches.to_string(),
    );
    row(
        "threads marked wrong",
        b.threads_marked_wrong.to_string(),
        c.threads_marked_wrong.to_string(),
    );
    println!(
        "\nWEC speedup over the baseline: {:+.2}%  (checksums verified on both runs)",
        (base.cycles as f64 / wec.cycles as f64 - 1.0) * 100.0
    );
}
