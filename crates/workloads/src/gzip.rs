//! `164.gzip` analog — LZ77 match finding over hash chains.
//!
//! gzip's deflate inner loop hashes the next three input bytes, walks the
//! hash chain of earlier positions, and compares candidate matches byte by
//! byte.  The paper parallelized its hot loops (MinneSPEC large input,
//! 15.7% parallelized) and Figure 8 shows gzip with the *highest*
//! thread-level parallelism of the suite (14× at 16 TUs).
//!
//! The analog walks a pre-built chain structure over pseudo-text with
//! LZ77-style repetitions: each thread takes one input position window,
//! hashes its 3-byte prefix, walks the `prev[]` chain, and scores candidate
//! matches with a byte-compare loop — data-dependent branches every
//! iteration (wrong-path load fodder) and scattered window reads (L1
//! misses).  Positions advance monotonically across windows, so run-ahead
//! threads touch exactly the text the next region processes.
//!
//! Table 1 transformations: loop coalescing, statement reordering.

use wec_isa::reg::Reg;
use wec_isa::ProgramBuilder;

use crate::datagen::{permutation_cycle, pseudo_text, rng_for};
use crate::harness::{
    counted_continuation, counted_exit, emit_chase_reduce, emit_checksum_reduce, emit_sta_loop,
    IND, INV, MY, T0, T1, T2, T3, T4, T5, T6, T7,
};
use crate::{Scale, Workload};

/// Input text bytes (power of two).
const TEXT: usize = 32 * 1024;
/// Hash-table buckets (power of two).
const BUCKETS: usize = 4096;
/// Positions handled per thread.
const STRIDE: usize = 8;
/// Threads per parallel region.
const WINDOW: usize = 32;
/// Chain steps examined per position.
const CHAIN_DEPTH: usize = 4;
/// Threads per pass (the scan covers THREADS*STRIDE leading positions).
const THREADS: usize = TEXT / STRIDE / 32;
/// Sequential emit-phase chase (Huffman table walks are pointer-chasing in
/// real deflate): permutation size, steps and reps per pass, sized to
/// Table 2's 15.7% parallel fraction.
const EMIT_PERM: usize = 8192;
const EMIT_STEPS: i64 = 5120;
const EMIT_REPS: u32 = 8;
/// Maximum match length scored.
const MAX_MATCH: usize = 16;

struct HostData {
    text: Vec<u8>,
    head: Vec<u64>,
    prev: Vec<u64>,
    /// Emit-phase chase permutation.
    perm: Vec<u64>,
}

fn hash3(text: &[u8], pos: usize) -> usize {
    let v = (text[pos] as usize) << 10 ^ (text[pos + 1] as usize) << 5 ^ text[pos + 2] as usize;
    v & (BUCKETS - 1)
}

fn generate() -> HostData {
    let mut rng = rng_for("164.gzip", 3);
    let text = pseudo_text(&mut rng, TEXT);
    // Pre-built chains, most recent position first, as deflate maintains.
    let mut head = vec![u64::MAX; BUCKETS];
    let mut prev = vec![u64::MAX; TEXT];
    for pos in 0..TEXT - 2 {
        let h = hash3(&text, pos);
        prev[pos] = head[h];
        head[h] = pos as u64;
    }
    let perm = permutation_cycle(&mut rng, EMIT_PERM);
    HostData {
        text,
        head,
        prev,
        perm,
    }
}

/// Host reference: per position, walk up to CHAIN_DEPTH predecessors that
/// are strictly earlier than the position, scoring the longest byte match
/// (capped); accumulate a per-thread score; checksum per pass.
fn reference(d: &HostData, passes: u32) -> u64 {
    let threads = THREADS;
    let mut out = vec![0u64; threads];
    let mut check = 0u64;
    for pass in 0..passes {
        for t in 0..threads {
            let mut score = pass as u64;
            for k in 0..STRIDE {
                let pos = t * STRIDE + k;
                let h = hash3(&d.text, pos);
                let mut cand = d.head[h];
                let mut best = 0u64;
                for _ in 0..CHAIN_DEPTH {
                    if cand == u64::MAX || cand >= pos as u64 {
                        // Entries at/after pos are "not yet inserted" from
                        // this position's point of view: follow the chain.
                        if cand == u64::MAX {
                            break;
                        }
                        cand = d.prev[cand as usize];
                        continue;
                    }
                    let mut len = 0u64;
                    while (len as usize) < MAX_MATCH
                        && d.text[cand as usize + len as usize] == d.text[pos + len as usize]
                    {
                        len += 1;
                    }
                    if len > best {
                        best = len;
                    }
                    cand = d.prev[cand as usize];
                }
                score = score.wrapping_add(best.wrapping_mul(pos as u64 | 1));
            }
            out[t] = score;
        }
        check = crate::harness::checksum_reduce_reference(check, &out);
        check = crate::harness::chase_reduce_reference(check, &d.perm, EMIT_STEPS, EMIT_REPS);
    }
    check
}

pub fn build(scale: Scale) -> Workload {
    let passes = scale.units;
    let d = generate();
    let threads = THREADS;

    let mut b = ProgramBuilder::new("164.gzip");
    let text_words: Vec<u64> = d
        .text
        .chunks(8)
        .map(|c| {
            let mut v = 0u64;
            for (i, &byte) in c.iter().enumerate() {
                v |= (byte as u64) << (8 * i);
            }
            v
        })
        .collect();
    let expected_check = reference(&d, passes);
    let text = b.alloc_u64s(&text_words);
    let perm_scaled = crate::harness::scaled_perm(&d.perm);
    let perm_base = b.alloc_u64s(&perm_scaled);
    // MAX_MATCH bytes of tail padding so match loops never run off the end.
    let _pad = b.alloc_u64s(&[0; 4]);
    let head = b.alloc_u64s(&d.head);
    let prev = b.alloc_u64s(&d.prev);
    let out = b.alloc_zeroed_u64s(threads as u64);
    let _slack = b.alloc_bytes(16 * 1024, 64);
    let check = b.alloc_zeroed_u64s(1);

    let (textr, headr, prevr, outr, maskr, passr, winr, boundr, npassr, bmaskr) = (
        INV[0], INV[1], INV[2], INV[3], INV[4], INV[5], INV[6], INV[7], INV[8], INV[9],
    );
    let permr = Reg(26);
    b.la(permr, perm_base);
    b.la(textr, text);
    b.la(headr, head);
    b.la(prevr, prev);
    b.la(outr, out);
    b.li(maskr, (threads - 1) as i64);
    b.li(bmaskr, (BUCKETS - 1) as i64);
    b.li(npassr, passes as i64);
    b.li(passr, 0);

    b.label("gz_pass");
    b.li(winr, 0);
    b.label("gz_win");
    b.slli(IND, winr, WINDOW.trailing_zeros() as i32);
    b.addi(boundr, IND, WINDOW as i32);
    emit_sta_loop(
        &mut b,
        "gz_r",
        1,
        &[IND],
        counted_continuation,
        |_| {},
        |b| {
            // T0 = thread index (masked), T1 = score, T2 = k
            b.and(T0, MY, maskr);
            b.mv(T1, passr);
            b.li(T2, 0);
            b.label("gz_k");
            // pos = t*STRIDE + k  (T3)
            b.slli(T3, T0, STRIDE.trailing_zeros() as i32);
            b.add(T3, T3, T2);
            // h = (text[pos]<<10 ^ text[pos+1]<<5 ^ text[pos+2]) & bmask (T4)
            b.add(T4, textr, T3);
            b.lbu(T5, T4, 0);
            b.slli(T5, T5, 10);
            b.lbu(T6, T4, 1);
            b.slli(T6, T6, 5);
            b.xor(T5, T5, T6);
            b.lbu(T6, T4, 2);
            b.xor(T5, T5, T6);
            b.and(T4, T5, bmaskr);
            // cand = head[h]  (T4), best = 0 (T5), depth = CHAIN_DEPTH (T6)
            b.slli(T4, T4, 3);
            b.add(T4, headr, T4);
            b.ld(T4, T4, 0);
            b.li(T5, 0);
            b.li(T6, CHAIN_DEPTH as i64);
            b.label("gz_chain");
            b.beq(T6, Reg::ZERO, "gz_chain_end");
            b.addi(T6, T6, -1);
            // cand == MAX? (MAX decodes as -1 when compared signed)
            b.blt(T4, Reg::ZERO, "gz_chain_end");
            // cand >= pos: skip scoring, follow chain.
            b.bge(T4, T3, "gz_follow");
            // Score: byte-compare text[cand..] with text[pos..].
            b.li(T7, 0); // len
            b.label("gz_match");
            b.slti(IND2_SCRATCH, T7, MAX_MATCH as i32);
            b.beq(IND2_SCRATCH, Reg::ZERO, "gz_match_end");
            b.add(IND2_SCRATCH, T4, T7);
            b.add(IND2_SCRATCH, textr, IND2_SCRATCH);
            b.lbu(IND2_SCRATCH, IND2_SCRATCH, 0);
            b.add(MY2_SCRATCH, T3, T7);
            b.add(MY2_SCRATCH, textr, MY2_SCRATCH);
            b.lbu(MY2_SCRATCH, MY2_SCRATCH, 0);
            b.bne(IND2_SCRATCH, MY2_SCRATCH, "gz_match_end");
            b.addi(T7, T7, 1);
            b.j("gz_match");
            b.label("gz_match_end");
            // best = max(best, len)
            b.bge(T5, T7, "gz_follow");
            b.mv(T5, T7);
            b.label("gz_follow");
            // cand = prev[cand]
            b.slli(T4, T4, 3);
            b.add(T4, prevr, T4);
            b.ld(T4, T4, 0);
            b.j("gz_chain");
            b.label("gz_chain_end");
            // score += best * (pos | 1)
            b.alui(wec_isa::inst::AluOp::Or, T7, T3, 1);
            b.mul(T7, T5, T7);
            b.add(T1, T1, T7);
            b.addi(T2, T2, 1);
            b.slti(T7, T2, STRIDE as i32);
            b.bne(T7, Reg::ZERO, "gz_k");
            // out[t] = score
            b.slli(T0, T0, 3);
            b.add(T0, outr, T0);
            b.sd(T1, T0, 0);
        },
        counted_exit(boundr),
    );
    b.addi(winr, winr, 1);
    b.li(T0, (threads / WINDOW) as i64);
    b.blt(winr, T0, "gz_win");
    // Sequential emit phase: reduce the scores, then walk the Huffman-table
    // chase.
    emit_checksum_reduce(&mut b, "gz", outr, threads as i64, check);
    emit_chase_reduce(&mut b, "gz_emit", permr, EMIT_STEPS, EMIT_REPS, check);
    b.addi(passr, passr, 1);
    b.blt(passr, npassr, "gz_pass");
    b.halt();

    Workload {
        name: "164.gzip",
        suite: "SPEC2000/INT",
        input: "MinneSPEC large",
        transforms: &["loop coalescing", "statement reordering"],
        program: b.build().unwrap(),
        check_addr: check,
        expected_check,
    }
}

/// Scratch registers the body borrows beyond T0..T7.
const IND2_SCRATCH: Reg = Reg(13);
const MY2_SCRATCH: Reg = Reg(14);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_and_verify;
    use wec_core::config::ProcPreset;

    #[test]
    fn chains_point_strictly_backwards() {
        let d = generate();
        for pos in 0..TEXT - 2 {
            let p = d.prev[pos];
            assert!(p == u64::MAX || p < pos as u64, "prev[{pos}] = {p}");
        }
    }

    #[test]
    fn self_check_passes_under_orig_and_wec() {
        let w = build(Scale::SMOKE);
        for preset in [ProcPreset::Orig, ProcPreset::WthWpWec] {
            run_and_verify(&w, preset.machine(4))
                .unwrap_or_else(|e| panic!("{}: {e}", preset.name()));
        }
    }
}
