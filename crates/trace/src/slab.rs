//! The in-memory trace slab: decode a `.wectrace` once, replay it many
//! times.
//!
//! A geometry sweep replays the same trace at dozens of configurations.
//! Decoding per point (varint walk + k-way stream merge) is pure
//! redundancy — the trace never changes, only the cache geometry does.
//! [`TraceSlab`] pays the decode exactly once:
//!
//! * every block of every per-TU stream is decoded on a **decoder pool**
//!   (blocks are self-contained — all delta contexts reset at block
//!   boundaries — so they decode independently and in any order);
//! * per-TU record vectors are stitched back together in block order and
//!   verified against the stream record counts and content checksums, so
//!   the slab provides exactly the integrity guarantees of the streaming
//!   decoder;
//! * the per-TU streams are merged **once** into the machine's global
//!   access order and stored as a structure-of-arrays ([`MergedOrder`]):
//!   contiguous `cycles`/`addrs`/`tus`/`kinds`/`pcs` arrays that the
//!   batched replay loop streams through (`pcs` is only read when the
//!   attribution ledger is on; the `squashed` field stays unused).
//!
//! The slab is immutable after construction and `Sync`, so one slab is
//! shared by every worker of a parallel sweep; each worker owns only its
//! private cache hierarchy.

use crate::format::{Trace, TraceHeader};
use crate::record::{TraceKind, TraceRecord};
use crate::stream::decode_block_into;
use crate::TraceError;

/// The merged global access order, structure-of-arrays.  Index `i` across
/// the five vectors is one admitted access; the arrays are contiguous so
/// the replay hot loop (and any precompute over addresses) streams
/// sequentially instead of striding over 32-byte records.
pub struct MergedOrder {
    pub cycles: Vec<u64>,
    pub addrs: Vec<u64>,
    pub tus: Vec<u16>,
    pub kinds: Vec<TraceKind>,
    /// Issuing PC per access (0 for stores, the fetch address for ifetches
    /// — the capture-side convention).  Only the attribution ledger reads
    /// this array.
    pub pcs: Vec<u32>,
}

impl MergedOrder {
    pub fn len(&self) -> usize {
        self.cycles.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cycles.is_empty()
    }
}

/// A fully decoded, merge-ordered, shareable trace.
pub struct TraceSlab {
    header: TraceHeader,
    identity: u64,
    /// Per-TU decoded records, in stream order.
    streams: Vec<Vec<TraceRecord>>,
    merged: MergedOrder,
}

impl TraceSlab {
    /// Decode `trace` into a slab, fanning block decoding over `jobs`
    /// worker threads (1 = decode inline).  Verifies every block byte
    /// checksum, every stream record count and content checksum, and the
    /// header total — the same guarantees as fully iterating the trace.
    pub fn build(trace: &Trace, jobs: usize) -> Result<TraceSlab, TraceError> {
        let streams = decode_streams(trace, jobs.max(1))?;
        let total: u64 = streams.iter().map(|s| s.len() as u64).sum();
        if total != trace.header.total_records {
            return Err(TraceError::Corrupt(format!(
                "decoded {total} records, header says {}",
                trace.header.total_records
            )));
        }
        let merged = merge_streams(&streams);
        Ok(TraceSlab {
            header: trace.header.clone(),
            identity: trace.identity(),
            streams,
            merged,
        })
    }

    /// [`TraceSlab::build`] with an inline (single-threaded) decode.
    pub fn build_seq(trace: &Trace) -> Result<TraceSlab, TraceError> {
        Self::build(trace, 1)
    }

    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// The capture's stable identity ([`Trace::identity`]) — memo keys
    /// computed from a slab match those computed from the trace it was
    /// built from.
    pub fn identity(&self) -> u64 {
        self.identity
    }

    /// Total decoded records.
    pub fn records(&self) -> u64 {
        self.merged.len() as u64
    }

    /// One TU's records in stream order — a zero-copy slice into the slab.
    pub fn tu_records(&self, tu: u32) -> &[TraceRecord] {
        &self.streams[tu as usize]
    }

    /// The global-order structure-of-arrays view the replay loop drives.
    pub fn merged(&self) -> &MergedOrder {
        &self.merged
    }
}

/// Decode every stream's blocks, on `jobs` threads when `jobs > 1`.
fn decode_streams(trace: &Trace, jobs: usize) -> Result<Vec<Vec<TraceRecord>>, TraceError> {
    // One work item per block, addressed as (stream index, block index).
    let work: Vec<(usize, usize)> = trace
        .streams
        .iter()
        .enumerate()
        .flat_map(|(si, s)| (0..s.blocks.len()).map(move |bi| (si, bi)))
        .collect();
    let jobs = jobs.min(work.len().max(1));

    let mut decoded: Vec<Vec<TraceRecord>> = Vec::with_capacity(work.len());
    if jobs <= 1 {
        for &(si, bi) in &work {
            let mut out = Vec::new();
            decode_block_into(&trace.streams[si].blocks[bi], si as u32, &mut out)
                .map_err(|e| block_err(si, bi, e))?;
            decoded.push(out);
        }
    } else {
        let slots: Vec<std::sync::OnceLock<Result<Vec<TraceRecord>, TraceError>>> = (0..work.len())
            .map(|_| std::sync::OnceLock::new())
            .collect();
        let next = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..jobs {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(&(si, bi)) = work.get(i) else {
                        return;
                    };
                    let mut out = Vec::new();
                    let res = decode_block_into(&trace.streams[si].blocks[bi], si as u32, &mut out)
                        .map(|()| out)
                        .map_err(|e| block_err(si, bi, e));
                    let _ = slots[i].set(res);
                });
            }
        });
        for slot in slots {
            decoded.push(
                slot.into_inner()
                    .expect("decoder pool exited with an unfilled slot")?,
            );
        }
    }

    // Stitch blocks back into per-TU streams (work is in (stream, block)
    // order, so a plain sequential append reassembles each stream) and run
    // the stream-level integrity checks the streaming decoder enforces.
    let mut streams: Vec<Vec<TraceRecord>> = trace
        .streams
        .iter()
        .map(|s| Vec::with_capacity(s.records as usize))
        .collect();
    for (&(si, _), mut block) in work.iter().zip(decoded) {
        streams[si].append(&mut block);
    }
    for (si, (stream, enc)) in streams.iter().zip(&trace.streams).enumerate() {
        if stream.len() as u64 != enc.records {
            return Err(TraceError::Corrupt(format!(
                "stream {si} decoded {} records, header says {}",
                stream.len(),
                enc.records
            )));
        }
        let mut checksum = crate::codec::FNV_OFFSET;
        for rec in stream {
            checksum = rec.fold_checksum(checksum);
        }
        if checksum != enc.checksum {
            return Err(TraceError::Corrupt(format!(
                "stream {si} content checksum mismatch"
            )));
        }
    }
    Ok(streams)
}

fn block_err(si: usize, bi: usize, e: TraceError) -> TraceError {
    match e {
        TraceError::Corrupt(msg) => TraceError::Corrupt(format!("stream {si} block {bi}: {msg}")),
        other => other,
    }
}

/// K-way merge of the per-TU streams by [`TraceRecord::order_key`] into
/// the structure-of-arrays global order — computed once per slab instead
/// of once per replayed sweep point.
fn merge_streams(streams: &[Vec<TraceRecord>]) -> MergedOrder {
    let total: usize = streams.iter().map(Vec::len).sum();
    let mut merged = MergedOrder {
        cycles: Vec::with_capacity(total),
        addrs: Vec::with_capacity(total),
        tus: Vec::with_capacity(total),
        kinds: Vec::with_capacity(total),
        pcs: Vec::with_capacity(total),
    };
    let mut pos: Vec<usize> = vec![0; streams.len()];
    loop {
        let mut best: Option<((u64, u8, u32), usize)> = None;
        for (si, s) in streams.iter().enumerate() {
            if let Some(rec) = s.get(pos[si]) {
                let key = rec.order_key();
                if best.is_none_or(|(bk, _)| key < bk) {
                    best = Some((key, si));
                }
            }
        }
        let Some((_, si)) = best else {
            break;
        };
        let rec = &streams[si][pos[si]];
        pos[si] += 1;
        merged.cycles.push(rec.cycle);
        merged.addrs.push(rec.addr);
        merged.tus.push(rec.tu as u16);
        merged.kinds.push(rec.kind);
        merged.pcs.push(rec.pc);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::FORMAT_VERSION;
    use crate::stream::StreamEncoder;

    fn rec(cycle: u64, tu: u32, kind: TraceKind, addr: u64) -> TraceRecord {
        TraceRecord {
            cycle,
            tu,
            pc: match kind {
                TraceKind::InstFetch => addr as u32,
                TraceKind::CorrectStore => 0,
                _ => 0x40,
            },
            addr,
            kind,
            squashed: kind.access_kind().is_wrong(),
        }
    }

    fn trace_of(per_tu: Vec<Vec<TraceRecord>>, block_cap: usize) -> Trace {
        let total = per_tu.iter().map(|s| s.len() as u64).sum();
        let streams = per_tu
            .into_iter()
            .map(|recs| {
                let mut e = StreamEncoder::with_block_records(block_cap);
                for r in &recs {
                    e.push(r);
                }
                e.finish()
            })
            .collect::<Vec<_>>();
        Trace {
            header: TraceHeader {
                format_version: FORMAT_VERSION,
                sim_revision: wec_core::SIM_REVISION,
                n_tus: streams.len() as u32,
                scale_units: 1,
                bench: "slab.test".into(),
                cfg_label: "slab/cfg".into(),
                total_records: total,
            },
            streams,
        }
    }

    fn sample(n: u64) -> Vec<Vec<TraceRecord>> {
        let tu0 = (0..n)
            .map(|i| rec(i, 0, TraceKind::CorrectLoad, 0x1000 + i * 64))
            .collect();
        let tu1 = (0..n / 2)
            .map(|i| {
                let kind = if i % 3 == 0 {
                    TraceKind::WrongPathLoad
                } else {
                    TraceKind::InstFetch
                };
                rec(i * 2 + 1, 1, kind, 0x40_0000 + i * 8)
            })
            .collect();
        vec![tu0, tu1]
    }

    #[test]
    fn slab_matches_streaming_decode_any_job_count() {
        let per_tu = sample(500);
        let trace = trace_of(per_tu.clone(), 64);
        for jobs in [1, 2, 7] {
            let slab = TraceSlab::build(&trace, jobs).unwrap();
            assert_eq!(slab.records(), trace.header.total_records);
            assert_eq!(slab.identity(), trace.identity());
            for (tu, want) in per_tu.iter().enumerate() {
                assert_eq!(slab.tu_records(tu as u32), &want[..], "jobs={jobs} tu={tu}");
            }
        }
    }

    #[test]
    fn merged_order_matches_merged_iter() {
        let trace = trace_of(sample(300), 32);
        let slab = TraceSlab::build(&trace, 3).unwrap();
        let want: Vec<TraceRecord> = trace.merged().unwrap().collect::<Result<_, _>>().unwrap();
        let m = slab.merged();
        assert_eq!(m.len(), want.len());
        for (i, r) in want.iter().enumerate() {
            assert_eq!(m.cycles[i], r.cycle);
            assert_eq!(m.addrs[i], r.addr);
            assert_eq!(m.tus[i] as u32, r.tu);
            assert_eq!(m.kinds[i], r.kind);
            assert_eq!(m.pcs[i], r.pc);
        }
    }

    #[test]
    fn corrupt_block_fails_slab_build() {
        let mut trace = trace_of(sample(200), 32);
        let n = trace.streams[0].blocks[1].bytes.len();
        trace.streams[0].blocks[1].bytes[n / 2] ^= 0xff;
        for jobs in [1, 4] {
            match TraceSlab::build(&trace, jobs) {
                Err(TraceError::Corrupt(msg)) => {
                    assert!(msg.contains("block 1"), "unhelpful error: {msg}")
                }
                Err(other) => panic!("wrong error kind (jobs={jobs}): {other:?}"),
                Ok(_) => panic!("corruption not detected (jobs={jobs})"),
            }
        }
    }

    #[test]
    fn tampered_stream_count_fails_slab_build() {
        let mut trace = trace_of(sample(50), 16);
        trace.streams[0].records += 1;
        assert!(matches!(
            TraceSlab::build(&trace, 2),
            Err(TraceError::Corrupt(_))
        ));
    }

    #[test]
    fn empty_trace_builds_empty_slab() {
        let trace = trace_of(vec![vec![], vec![]], 16);
        let slab = TraceSlab::build(&trace, 4).unwrap();
        assert_eq!(slab.records(), 0);
        assert!(slab.merged().is_empty());
    }
}
