//! End-to-end tests of the superthreaded machine: thread pipelining,
//! fork/abort, run-time dependence checking, wrong-thread execution, and
//! the cross-configuration semantics invariant.

use wec_common::error::SimError;
use wec_common::ids::Addr;
use wec_core::config::ProcPreset;
use wec_core::machine::{simulate, Machine};
use wec_isa::reg::Reg;
use wec_isa::{Program, ProgramBuilder};

/// A parallel loop with independent iterations, 8 elements of work each:
/// `out[i] = sum(a[8i .. 8i+8]) + 7` for `i in 0..n` (`n >= 1`).
///
/// Thread-pipelined in the paper's do-while shape (Figure 4): fork at the
/// top of the iteration, exit test at the bottom — so the thread executing
/// the *last valid* iteration aborts, and its already-running successors
/// become wrong threads mid-body (with loads still to issue, which is what
/// makes them wrong-execution loads).
fn independent_loop(n: i64) -> (Program, Addr, Vec<u64>) {
    assert!(n >= 1);
    const K: i64 = 16;
    let mut b = ProgramBuilder::new("indep");
    let a: Vec<u64> = (0..(n * K) as u64).map(|i| i * i + 1).collect();
    let a_base = b.alloc_u64s(&a);
    let out = b.alloc_zeroed_u64s(n as u64);
    // Cold, mapped slack after the arrays: the run-ahead of wrong threads
    // lands here and must miss (that is the effect under test).
    let _slack = b.alloc_bytes(64 * 1024, 64);
    let check = b.alloc_zeroed_u64s(1);
    let (i, my, n_r, ab, ob, t0, t1, acc, j) = (
        Reg(1),
        Reg(3),
        Reg(22),
        Reg(20),
        Reg(21),
        Reg(4),
        Reg(5),
        Reg(6),
        Reg(7),
    );
    b.la(ab, a_base);
    b.la(ob, out);
    b.li(n_r, n);
    b.li(i, 0);
    b.begin(1);
    b.label("body");
    // Continuation: capture my index, compute the recurrence, fork.
    b.mv(my, i);
    b.addi(i, i, 1);
    b.fork(&[i], "body");
    // TSAG: no target stores in this loop.
    b.tsagdone();
    // Computation: acc = sum of a[8*my .. 8*my+8], then out[my] = acc + 7.
    b.slli(t0, my, 7); // 16 elements * 8 bytes
    b.add(t0, ab, t0);
    b.li(acc, 0);
    b.li(j, K);
    b.label("inner");
    b.ld(t1, t0, 0);
    b.add(acc, acc, t1);
    b.addi(t0, t0, 8);
    b.addi(j, j, -1);
    b.bne(j, Reg::ZERO, "inner");
    b.slli(t0, my, 3);
    b.add(t0, ob, t0);
    b.addi(acc, acc, 7);
    b.sd(acc, t0, 0);
    // Exit test: my iteration was the last valid one?
    b.blt(i, n_r, "done");
    b.abort_to("seq");
    b.label("done");
    b.thread_end();
    // Sequential tail: reduce out[] into a checksum cell, as a real
    // program would — and as the window in which wrong threads run
    // "in parallel with the following sequential code" (§3.1.2).
    b.label("seq");
    b.la(t0, out);
    b.li(acc, 0);
    b.li(j, n);
    b.label("reduce");
    b.ld(t1, t0, 0);
    b.add(acc, acc, t1);
    b.addi(t0, t0, 8);
    b.addi(j, j, -1);
    b.bne(j, Reg::ZERO, "reduce");
    b.la(t0, check);
    b.sd(acc, t0, 0);
    b.halt();
    let expected: Vec<u64> = a
        .chunks(K as usize)
        .map(|c| c.iter().sum::<u64>() + 7)
        .collect();
    let prog = b.build().unwrap();
    (prog, out, expected)
}

/// A parallel loop with a true cross-iteration dependence carried through
/// memory via a target store: `acc += a[i]`.
fn dependent_loop(n: i64) -> (Program, Addr, u64) {
    let mut b = ProgramBuilder::new("dep");
    let a: Vec<u64> = (1..=n as u64).collect();
    let a_base = b.alloc_u64s(&a);
    let acc = b.alloc_zeroed_u64s(1);
    let (i, my, n_r, ab, accb, t0, t1, t2) = (
        Reg(1),
        Reg(3),
        Reg(22),
        Reg(20),
        Reg(21),
        Reg(4),
        Reg(5),
        Reg(6),
    );
    b.la(ab, a_base);
    b.la(accb, acc);
    b.li(n_r, n);
    b.li(i, 0);
    b.begin(2);
    b.label("body");
    b.mv(my, i);
    b.addi(i, i, 1);
    b.fork(&[i], "body");
    // TSAG: announce the accumulator as a target store.
    b.tsannounce(accb, 0);
    b.tsagdone();
    // Computation: read the (possibly upstream-released) accumulator,
    // add my element, store it back (releasing downstream).
    b.ld(t0, accb, 0);
    b.slli(t1, my, 3);
    b.add(t1, ab, t1);
    b.ld(t2, t1, 0);
    b.add(t0, t0, t2);
    b.sd(t0, accb, 0);
    // Exit test at the bottom (do-while shape).
    b.blt(i, n_r, "done");
    b.abort_to("seq");
    b.label("done");
    b.thread_end();
    b.label("seq");
    b.halt();
    let expected: u64 = a.iter().sum();
    (b.build().unwrap(), acc, expected)
}

#[test]
fn independent_parallel_loop_computes_correct_results() {
    let (prog, out, expected) = independent_loop(24);
    let r = simulate(ProcPreset::Orig.machine(4), &prog).unwrap();
    let m = Machine::new(ProcPreset::Orig.machine(4), &prog).unwrap();
    drop(m);
    // Re-run to inspect memory.
    let mut machine = Machine::new(ProcPreset::Orig.machine(4), &prog).unwrap();
    machine.run().unwrap();
    for (k, &want) in expected.iter().enumerate() {
        assert_eq!(
            machine.memory().read_u64(out + 8 * k as u64).unwrap(),
            want,
            "out[{k}]"
        );
    }
    assert_eq!(r.metrics.regions, 1);
    // n valid iterations, plus whatever speculative successors started
    // before the last thread's abort swept them away.
    assert!(r.metrics.threads_started >= 24);
    assert!(r.metrics.parallel_instructions > 0);
    assert!(r.metrics.fraction_parallelized() > 0.3);
}

#[test]
fn dependent_loop_respects_target_store_ordering() {
    let (prog, acc, expected) = dependent_loop(30);
    for preset in [ProcPreset::Orig, ProcPreset::WthWpWec] {
        for tus in [1usize, 2, 4, 8] {
            let mut machine = Machine::new(preset.machine(tus), &prog).unwrap();
            machine
                .run()
                .unwrap_or_else(|e| panic!("{} {tus}TU: {e}", preset.name()));
            assert_eq!(
                machine.memory().read_u64(acc).unwrap(),
                expected,
                "{} {tus}TU",
                preset.name()
            );
        }
    }
}

#[test]
fn all_presets_and_tu_counts_preserve_semantics() {
    let (prog, _, _) = independent_loop(20);
    let baseline = simulate(ProcPreset::Orig.machine(1), &prog).unwrap();
    for preset in ProcPreset::ALL {
        for tus in [1usize, 2, 4] {
            let r = simulate(preset.machine(tus), &prog)
                .unwrap_or_else(|e| panic!("{} {tus}TU: {e}", preset.name()));
            assert_eq!(
                r.checksum,
                baseline.checksum,
                "{} at {tus} TUs diverged architecturally",
                preset.name()
            );
        }
    }
}

#[test]
fn simulation_is_deterministic() {
    let (prog, _, _) = dependent_loop(16);
    let a = simulate(ProcPreset::WthWpWec.machine(4), &prog).unwrap();
    let b = simulate(ProcPreset::WthWpWec.machine(4), &prog).unwrap();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.checksum, b.checksum);
    assert_eq!(a.metrics.l1d.wrong_accesses, b.metrics.l1d.wrong_accesses);
}

#[test]
fn wrong_thread_execution_marks_and_runs_wrong_threads() {
    let (prog, _, _) = independent_loop(24);
    let wth = simulate(ProcPreset::Wth.machine(4), &prog).unwrap();
    assert!(
        wth.metrics.threads_marked_wrong > 0,
        "no wrong threads were marked"
    );
    assert!(
        wth.metrics.wrong_instructions > 0,
        "wrong threads did not execute"
    );
    let orig = simulate(ProcPreset::Orig.machine(4), &prog).unwrap();
    assert_eq!(orig.metrics.threads_marked_wrong, 0);
    assert!(orig.metrics.threads_killed > 0);
    assert_eq!(wth.checksum, orig.checksum);
}

#[test]
fn wrong_thread_loads_are_tagged_and_wec_captures_them() {
    let (prog, _, _) = independent_loop(32);
    let wec = simulate(ProcPreset::WthWpWec.machine(4), &prog).unwrap();
    assert!(
        wec.metrics.l1d.wrong_accesses > 0,
        "no wrong-execution loads reached the L1 data path"
    );
    let orig = simulate(ProcPreset::Orig.machine(4), &prog).unwrap();
    assert_eq!(orig.metrics.l1d.wrong_accesses, 0);
}

#[test]
fn more_thread_units_speed_up_a_parallel_loop() {
    // Enough iterations that thread pipelining amortizes fork costs.
    let (prog, _, _) = independent_loop(64);
    let t1 = simulate(ProcPreset::Orig.machine(1), &prog).unwrap().cycles;
    let t4 = simulate(ProcPreset::Orig.machine(4), &prog).unwrap().cycles;
    assert!(
        t4 < t1,
        "4 TUs ({t4} cycles) should beat 1 TU ({t1} cycles)"
    );
}

#[test]
fn sequential_program_needs_no_region() {
    let mut b = ProgramBuilder::new("seq");
    let out = b.alloc_zeroed_u64s(1);
    b.la(Reg(1), out);
    b.li(Reg(2), 99);
    b.sd(Reg(2), Reg(1), 0);
    b.halt();
    let prog = b.build().unwrap();
    let mut m = Machine::new(ProcPreset::Orig.machine(2), &prog).unwrap();
    let r = m.run().unwrap();
    assert_eq!(m.memory().read_u64(out).unwrap(), 99);
    assert_eq!(r.metrics.regions, 0);
    assert_eq!(r.metrics.parallel_instructions, 0);
}

#[test]
fn runaway_program_hits_the_cycle_limit() {
    let mut b = ProgramBuilder::new("inf");
    b.label("loop");
    b.j("loop");
    let prog = b.build().unwrap();
    let mut cfg = ProcPreset::Orig.machine(1);
    cfg.max_cycles = 10_000;
    let err = simulate(cfg, &prog).unwrap_err();
    assert!(matches!(err, SimError::CycleLimit { .. }), "{err}");
}

#[test]
fn back_to_back_regions_reuse_thread_units() {
    // Two parallel regions in sequence; the second must sweep leftovers.
    let mut b = ProgramBuilder::new("two-regions");
    let out = b.alloc_zeroed_u64s(2);
    let (i, my, n_r, ob, t0) = (Reg(1), Reg(3), Reg(22), Reg(21), Reg(4));
    b.la(ob, out);
    b.li(n_r, 10);

    for (region, label_suffix) in [(1u16, "a"), (2u16, "b")] {
        let body = format!("body{label_suffix}");
        let seq = format!("seq{label_suffix}");
        b.li(i, 0);
        b.begin(region);
        b.label(&body);
        b.mv(my, i);
        b.addi(i, i, 1);
        b.fork(&[i], &body);
        b.blt(my, n_r, &format!("run{label_suffix}"));
        b.abort_to(&seq);
        b.label(&format!("run{label_suffix}"));
        b.tsagdone();
        b.thread_end();
        b.label(&seq);
        // After the region, bump out[region-1].
        b.ld(t0, ob, (region as i32 - 1) * 8);
        b.addi(t0, t0, 1);
        b.sd(t0, ob, (region as i32 - 1) * 8);
    }
    b.halt();
    let prog = b.build().unwrap();
    for preset in [ProcPreset::Orig, ProcPreset::Wth, ProcPreset::WthWpWec] {
        let mut m = Machine::new(preset.machine(4), &prog).unwrap();
        let r = m.run().unwrap_or_else(|e| panic!("{}: {e}", preset.name()));
        assert_eq!(m.memory().read_u64(out).unwrap(), 1, "{}", preset.name());
        assert_eq!(m.memory().read_u64(out + 8).unwrap(), 1);
        assert_eq!(r.metrics.regions, 2);
    }
}

#[test]
fn fork_transfer_values_reach_the_child() {
    // Forward two continuation variables and check each thread observed its
    // own (i, i*i) pair by writing both to its slot.
    let n = 12i64;
    let mut b = ProgramBuilder::new("fwd2");
    let out = b.alloc_zeroed_u64s(2 * n as u64);
    let (i, sq, my, mysq, n_r, ob, t0) = (Reg(1), Reg(2), Reg(3), Reg(4), Reg(22), Reg(21), Reg(5));
    b.la(ob, out);
    b.li(n_r, n);
    b.li(i, 0);
    b.li(sq, 0);
    b.begin(1);
    b.label("body");
    b.mv(my, i);
    b.mv(mysq, sq);
    // next i, next i*i (recurrence: (i+1)^2 = i^2 + 2i + 1)
    b.addi(i, i, 1);
    b.slli(t0, my, 1);
    b.add(sq, sq, t0);
    b.addi(sq, sq, 1);
    b.fork(&[i, sq], "body");
    b.blt(my, n_r, "run");
    b.abort_to("seq");
    b.label("run");
    b.tsagdone();
    b.slli(t0, my, 4); // 16 bytes per slot
    b.add(t0, ob, t0);
    b.sd(my, t0, 0);
    b.sd(mysq, t0, 8);
    b.thread_end();
    b.label("seq");
    b.halt();
    let prog = b.build().unwrap();
    let mut m = Machine::new(ProcPreset::Orig.machine(3), &prog).unwrap();
    m.run().unwrap();
    for k in 0..n as u64 {
        assert_eq!(m.memory().read_u64(out + 16 * k).unwrap(), k);
        assert_eq!(m.memory().read_u64(out + 16 * k + 8).unwrap(), k * k);
    }
}
