//! The superthreaded machine: thread units on a unidirectional ring sharing
//! a unified L2, executing the thread-pipelining model of §2.2 with the
//! wrong-execution semantics of §3.
//!
//! One global clock steps every thread unit's out-of-order core; the machine
//! realizes the [`wec_cpu::CoreEnv`] services per TU — routing loads through
//! the speculative memory buffer and the L1/WEC data path, and implementing
//! `begin`/`fork`/`abort`/`tsannounce`/`tsagdone`/`thread_end`.
//!
//! ## Scheduling rules (paper §2, §3.1.2)
//!
//! * The head thread is the oldest; write-back stages retire strictly in
//!   thread order (the watermark).
//! * `fork` targets the ring successor; if it is busy the fork is
//!   *deferred* — the youngest thread delays forking until a TU frees.
//! * `abort` by a correct thread kills its successors (or, with
//!   wrong-thread execution, *marks them wrong*), waits for all older
//!   threads to write back, then resumes sequential execution.
//! * Wrong threads keep running — loads tagged wrong-execution, forks
//!   suppressed, dependence waits bypassed — and die at their own abort or
//!   thread-end, or when the next `begin` sweeps them away.

use std::collections::VecDeque;
use std::sync::Arc;

use wec_common::error::{SimError, SimResult};
use wec_common::ids::{Addr, Cycle, ThreadId};
use wec_common::stats::{Counter, StatSet};
use wec_cpu::core::Core;
use wec_cpu::env::{CoreEnv, MemIssue, StaOutcome};
use wec_cpu::regs::ArchRegs;
use wec_isa::inst::Inst;
use wec_isa::program::{MemImage, Program};
use wec_mem::l2::SharedL2;
use wec_mem::stats::AccessKind;

use wec_isa::disasm::disassemble_inst;
use wec_telemetry::attr::AttributionReport;
use wec_telemetry::profile::{CycleProfiler, NoProf, Phase, PhaseNs, PhaseSink};
use wec_telemetry::{TelemetrySummary, TraceEvent};

use crate::config::MachineConfig;
use crate::dpath::{DataPath, DpResult};
use crate::events::{EventLog, SchedEvent};
use crate::membuf::{apply_word, LoadCheck};
use crate::metrics::{L1dAggregate, MachineMetrics};
use crate::tap::{AccessRecord, SharedSink};
use crate::telemetry::MachineTelemetry;
use crate::thread::{AliveTable, ThreadCtx, ThreadState, TsagDone, WrongSet};

/// Execution mode of the machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    Sequential { tu: usize },
    Parallel { region: u16 },
}

/// One entry of the region's target-store log (kept for replay when a new
/// thread forks mid-region).
#[derive(Clone, Debug)]
struct TsEvent {
    from: u64,
    addr: Addr,
    release: Option<(u64, u64)>, // (bytes, value)
}

#[derive(Clone, Debug)]
enum DeliveryEvent {
    Announce {
        addr: Addr,
        from: u64,
    },
    Release {
        addr: Addr,
        bytes: u64,
        value: u64,
        from: u64,
    },
}

#[derive(Clone, Debug)]
struct Delivery {
    at: Cycle,
    to: u64,
    ev: DeliveryEvent,
}

/// A fork whose start time has been fixed (target TU was free).
#[derive(Clone, Debug)]
struct PendingFork {
    start_at: Cycle,
    tu: usize,
    id: u64,
    body: u32,
    mask: u32,
    values: ArchRegs,
}

/// A fork waiting for its target TU to become idle.
#[derive(Clone, Debug)]
struct DeferredFork {
    tu: usize,
    id: u64,
    body: u32,
    mask: u32,
    values: ArchRegs,
}

#[derive(Clone, Debug)]
struct WbJob {
    id: u64,
    tu: usize,
    end_at: Cycle,
}

/// Machine-level counters.
#[derive(Clone, Debug, Default)]
pub struct MachineStats {
    pub regions: Counter,
    pub forks: Counter,
    pub deferred_forks: Counter,
    pub aborts: Counter,
    pub threads_started: Counter,
    pub threads_retired: Counter,
    pub threads_marked_wrong: Counter,
    pub threads_killed: Counter,
    pub wrong_loads_dropped: Counter,
    pub unmapped_spec_loads: Counter,
    pub wb_words: Counter,
    pub region_cycles: Counter,
    pub sequential_instructions: Counter,
    pub parallel_instructions: Counter,
    pub wrong_instructions: Counter,
    pub bus_broadcasts: Counter,
    pub bus_copies_updated: Counter,
    pub membuf_value_hits: Counter,
    pub dependence_waits: Counter,
}

/// Everything except the per-TU slots (split-borrowed against them).
struct Shared {
    cfg: MachineConfig,
    mem: MemImage,
    l2: SharedL2,
    now: Cycle,
    halted: bool,
    error: Option<SimError>,
    mode: Mode,
    next_thread: u64,
    /// All threads with id < watermark have fully retired.
    watermark: u64,
    region_first: u64,
    region_snapshot: ArchRegs,
    tu_busy: Vec<bool>,
    /// Alive threads (including wrong ones): id → TU.
    alive: AliveTable,
    wrong_set: WrongSet,
    ts_log: Vec<TsEvent>,
    deliveries: Vec<Delivery>,
    tsag_done: TsagDone,
    pending_forks: Vec<PendingFork>,
    deferred_forks: Vec<DeferredFork>,
    pending_kills: Vec<usize>,
    pending_voids: Vec<u64>,
    pending_updates: Vec<Addr>,
    wb_jobs: Vec<WbJob>,
    stats: MachineStats,
    events: EventLog,
    /// `Some` only when telemetry is enabled; every per-cycle hook is one
    /// `is_some` branch when off.
    tel: Option<Box<MachineTelemetry>>,
    /// `Some` only while an access tap is attached (trace capture); each
    /// data-path access site pays one `is_some` branch when off.
    tap: Option<SharedSink>,
}

impl Shared {
    fn fail(&mut self, e: SimError) {
        if self.error.is_none() {
            self.error = Some(e);
        }
    }

    fn is_wrong(&self, id: u64) -> bool {
        self.wrong_set.contains(id)
    }

    /// Log + deliver a TSAG announcement from `from`.
    fn announce_event(&mut self, from: u64, addr: Addr) {
        self.ts_log.push(TsEvent {
            from,
            addr,
            release: None,
        });
        let at = self.now.plus(self.cfg.ring_latency);
        for &(id, _) in self.alive.after(from) {
            if !self.wrong_set.contains(id) {
                self.deliveries.push(Delivery {
                    at,
                    to: id,
                    ev: DeliveryEvent::Announce { addr, from },
                });
            }
        }
    }

    /// Log + deliver a target-store release from `from`.
    fn release_event(&mut self, from: u64, addr: Addr, bytes: u64, value: u64) {
        if let Some(ev) = self
            .ts_log
            .iter_mut()
            .rev()
            .find(|e| e.from == from && e.addr.0 < addr.0 + bytes && addr.0 < e.addr.0 + 8)
        {
            ev.release = Some((bytes, value));
        }
        let at = self.now.plus(self.cfg.ring_latency);
        for &(id, _) in self.alive.after(from) {
            if !self.wrong_set.contains(id) {
                self.deliveries.push(Delivery {
                    at,
                    to: id,
                    ev: DeliveryEvent::Release {
                        addr,
                        bytes,
                        value,
                        from,
                    },
                });
            }
        }
    }

    /// Kill or mark wrong every thread younger than `of`; cancel their
    /// scheduled and deferred forks.
    fn cut_successors(&mut self, of: u64) {
        let mark_wrong = self.cfg.wrong_thread;
        let victims: Vec<(u64, usize)> = self.alive.after(of).to_vec();
        for (id, tu) in victims {
            self.pending_voids.push(id);
            if mark_wrong {
                if self.wrong_set.insert(id) {
                    self.stats.threads_marked_wrong.inc();
                    let now = self.now;
                    self.events.record(now, SchedEvent::MarkedWrong { id });
                }
            } else {
                self.alive.remove(id);
                self.tu_busy[tu] = false;
                self.pending_kills.push(tu);
                self.stats.threads_killed.inc();
                let now = self.now;
                self.events.record(now, SchedEvent::Killed { id, tu });
            }
        }
        // Forks that have not started yet are simply cancelled.
        let mut cancelled = Vec::new();
        self.pending_forks.retain(|f| {
            if f.id > of {
                cancelled.push(f.tu);
                false
            } else {
                true
            }
        });
        for tu in cancelled {
            self.tu_busy[tu] = false;
        }
        self.deferred_forks.retain(|f| f.id <= of);
    }

    /// Sweep all wrong threads (the `begin` rule of §3.1.2).
    fn kill_all_wrong(&mut self) {
        let victims: Vec<(u64, usize)> = self
            .alive
            .iter()
            .filter(|&(id, _)| self.wrong_set.contains(id))
            .collect();
        for (id, tu) in victims {
            self.alive.remove(id);
            self.tu_busy[tu] = false;
            self.pending_kills.push(tu);
            self.stats.threads_killed.inc();
        }
    }
}

/// One thread unit's non-core state.
struct TuSlot {
    core: Core,
    dpath: DataPath,
    icache: DataPath,
    /// Committed stores waiting for an L1 port (values already applied to
    /// memory; this queue only models cache timing/allocation).
    sbuf: VecDeque<Addr>,
    thread: Option<ThreadCtx>,
    last_committed: u64,
}

/// The whole superthreaded machine.
pub struct Machine {
    program: Arc<Program>,
    tus: Vec<TuSlot>,
    shared: Shared,
    /// Cycle-loop self-profiler (`None` unless `telemetry.profile` is on);
    /// kept outside [`Shared`] so the instrumented path can time the whole
    /// cycle body, which borrows `Shared` mutably.
    prof: Option<Box<CycleProfiler>>,
}

/// Result of a completed run.
#[derive(Clone, Debug)]
pub struct RunResult {
    pub cycles: u64,
    pub checksum: u64,
    pub metrics: MachineMetrics,
    pub stats: StatSet,
    /// What telemetry captured (`None` when telemetry was off).
    pub telemetry: Option<TelemetrySummary>,
    /// Speculation attribution ledger (`None` unless
    /// [`MachineConfig::attribution`] was on).
    pub attribution: Option<AttributionReport>,
}

impl Machine {
    pub fn new(cfg: MachineConfig, program: &Program) -> SimResult<Self> {
        let program = Arc::new(program.clone());
        let trace_events = cfg.telemetry.trace_events;
        let attribution = cfg.attribution;
        let mut tus = Vec::with_capacity(cfg.n_tus);
        for _ in 0..cfg.n_tus {
            let mut slot = TuSlot {
                core: Core::new(cfg.core.clone(), Arc::clone(&program)),
                dpath: DataPath::new(cfg.l1d)?,
                icache: DataPath::new(cfg.l1i)?,
                sbuf: VecDeque::new(),
                thread: None,
                last_committed: 0,
            };
            if trace_events {
                slot.dpath.trace.set_enabled(true);
                slot.core.flush_trace.set_enabled(true);
            }
            if attribution {
                // The ledger watches the L1D only; instruction fetch has no
                // speculative side structure to attribute.
                slot.dpath.enable_attribution();
            }
            tus.push(slot);
        }
        let mut l2 = SharedL2::new(cfg.l2)?;
        l2.trace.set_enabled(trace_events);
        let tel = if cfg.telemetry.enabled() {
            Some(Box::new(MachineTelemetry::new(
                cfg.telemetry.clone(),
                cfg.n_tus,
            )))
        } else {
            None
        };
        let shared = Shared {
            mem: program.data.clone(),
            l2,
            now: Cycle::ZERO,
            halted: false,
            error: None,
            mode: Mode::Sequential { tu: 0 },
            next_thread: 1,
            watermark: 1,
            region_first: 1,
            region_snapshot: ArchRegs::new(),
            tu_busy: {
                let mut v = vec![false; cfg.n_tus];
                v[0] = true;
                v
            },
            alive: AliveTable::new(),
            wrong_set: WrongSet::new(),
            ts_log: Vec::new(),
            deliveries: Vec::new(),
            tsag_done: TsagDone::new(),
            pending_forks: Vec::new(),
            deferred_forks: Vec::new(),
            pending_kills: Vec::new(),
            pending_voids: Vec::new(),
            pending_updates: Vec::new(),
            wb_jobs: Vec::new(),
            stats: MachineStats::default(),
            // Telemetry consumes scheduler events (thread spans, wrong-thread
            // lifetimes), so the log turns on with either switch.
            events: EventLog::new(cfg.event_log || cfg.telemetry.enabled()),
            tel,
            tap: None,
            cfg,
        };
        let prof = if shared.cfg.telemetry.profile {
            Some(Box::new(CycleProfiler::new(CycleProfiler::DEFAULT_STRIDE)))
        } else {
            None
        };
        Ok(Machine {
            program,
            tus,
            shared,
            prof,
        })
    }

    pub fn config(&self) -> &MachineConfig {
        &self.shared.cfg
    }

    /// Attach a memory-access tap (see [`crate::tap`]): every access the
    /// timing model admits to a data path is mirrored to `sink`.  The
    /// caller keeps its own handle on the `Rc` and harvests the recorded
    /// data after [`Machine::run`].  Attaching a sink does not perturb the
    /// simulation — captured runs produce bit-identical metrics.
    pub fn attach_access_sink(&mut self, sink: SharedSink) {
        self.shared.tap = Some(sink);
    }

    /// Run to `halt` (or error / cycle limit).
    pub fn run(&mut self) -> SimResult<RunResult> {
        let entry = self.program.entry;
        self.tus[0].core.start(entry, Cycle::ZERO);
        let mut occupants: Vec<Option<u64>> = vec![None; self.tus.len()];
        loop {
            let now = self.shared.now;
            for (slot, occ) in self.tus.iter().zip(occupants.iter_mut()) {
                *occ = slot.thread.as_ref().map(|t| t.id.0);
            }
            // One `is_some` branch per cycle when profiling is off; the
            // sampled path runs the same cycle body through the timing sink.
            let timed = match self.prof.as_deref() {
                Some(p) => p.due(now.0),
                None => false,
            };
            if timed {
                let mut laps = PhaseNs::default();
                self.cycle(&occupants, now, &mut laps);
                if let Some(p) = self.prof.as_deref_mut() {
                    p.record(now.0, &laps);
                }
            } else {
                self.cycle(&occupants, now, &mut NoProf);
            }
            if let Some(e) = self.shared.error.take() {
                return Err(e);
            }
            if self.shared.halted {
                break;
            }
            self.shared.now += 1;
            if self.shared.now.0 > self.shared.cfg.max_cycles {
                return Err(SimError::CycleLimit {
                    limit: self.shared.cfg.max_cycles,
                });
            }
        }
        let telemetry = self.finish_telemetry()?;
        let mut result = self.collect();
        result.telemetry = telemetry;
        Ok(result)
    }

    /// One machine cycle: tick every thread unit, run the scheduler, drain
    /// telemetry.  Generic over the [`PhaseSink`] so the profiled and
    /// unprofiled paths share this one body (see [`Core::tick_with`]).
    fn cycle<S: PhaseSink>(&mut self, occupants: &[Option<u64>], now: Cycle, sink: &mut S) {
        let n = self.tus.len();
        for i in 0..n {
            let slot = &mut self.tus[i];
            let TuSlot {
                core,
                dpath,
                icache,
                sbuf,
                thread,
                ..
            } = slot;
            let mut env = TuEnv {
                tu: i,
                n_tus: n,
                dpath,
                icache,
                sbuf,
                thread,
                shared: &mut self.shared,
            };
            core.tick_with(sink, &mut env, now);
        }
        let mut t = S::mark();
        self.post_cycle(occupants);
        sink.lap(&mut t, Phase::Sched);
        if self.shared.tel.is_some() {
            self.telemetry_cycle();
            sink.lap(&mut t, Phase::Telemetry);
        }
    }

    /// Drain the per-component telemetry buffers into the instruments and
    /// take an interval sample when one is due.  Called once per cycle, only
    /// when telemetry is enabled.
    fn telemetry_cycle(&mut self) {
        let shared = &mut self.shared;
        let Some(tel) = shared.tel.as_deref_mut() else {
            return;
        };
        for (i, slot) in self.tus.iter_mut().enumerate() {
            let tu = i as u32;
            for (cycle, ev, addr) in slot.dpath.trace.drain() {
                tel.on_l1(tu, cycle, ev, addr);
            }
            for rec in slot.core.flush_trace.drain() {
                tel.on_flush(tu, rec);
            }
        }
        // The L2 stamps at request arrival time, which can run ahead of the
        // cycle being drained; hold those back until their cycle comes up so
        // the merged stream stays non-decreasing.
        for (cycle, ev, addr) in shared.l2.trace.drain_until(shared.now.0) {
            tel.on_l2(cycle, ev, addr);
        }
        let evs = shared.events.events();
        while tel.sched_cursor < evs.len() {
            let (cycle, ev) = evs[tel.sched_cursor];
            tel.sched_cursor += 1;
            // `Begin` does not carry the head thread's TU; look it up so the
            // head gets an occupancy span like forked threads do.
            let head_tu = match ev {
                SchedEvent::Begin { head, .. } => shared.alive.get(head).map(|t| t as u32),
                _ => None,
            };
            tel.on_sched(cycle.0, &ev, head_tu);
        }
        if tel.cfg.sample_interval > 0 && shared.now.0 >= tel.next_sample_at {
            tel.next_sample_at = shared.now.0 + tel.cfg.sample_interval;
            let mut committed = 0u64;
            let mut l1_demand_accesses = 0u64;
            let mut l1_demand_misses = 0u64;
            let mut l1_wrong_accesses = 0u64;
            let mut l1_side_hits = 0u64;
            let mut wec_occupancy = 0u64;
            for slot in &self.tus {
                let d = &slot.dpath.stats;
                committed += slot.core.stats.committed.get();
                l1_demand_accesses += d.demand_accesses.get();
                l1_demand_misses += d.demand_misses.get();
                l1_wrong_accesses += d.wrong_accesses.get();
                l1_side_hits += d.side_hits.get();
                wec_occupancy += slot.dpath.side_occupancy() as u64;
            }
            let alive = shared.alive.iter().count() as u64;
            let wrong = shared
                .alive
                .iter()
                .filter(|&(id, _)| shared.wrong_set.contains(id))
                .count() as u64;
            tel.sample(
                shared.now.0,
                vec![
                    shared.now.0,
                    committed,
                    l1_demand_accesses,
                    l1_demand_misses,
                    l1_wrong_accesses,
                    l1_side_hits,
                    shared.l2.stats.demand_misses_to_next_level.get(),
                    shared.l2.stats.wrong_misses_to_next_level.get(),
                    wec_occupancy,
                    alive,
                    wrong,
                ],
            );
        }
    }

    /// Final telemetry drain: surface the per-core commit rings, close the
    /// Perfetto spans, write artifact files, and detach the summary.
    fn finish_telemetry(&mut self) -> SimResult<Option<TelemetrySummary>> {
        if self.shared.tel.is_none() {
            return Ok(None);
        }
        self.telemetry_cycle();
        let mut tel = self.shared.tel.take().unwrap();
        // L2 requests still in flight at halt have arrival stamps beyond the
        // final cycle; flush them now so nothing is silently dropped.
        for (cycle, ev, addr) in self.shared.l2.trace.drain_until(u64::MAX) {
            tel.on_l2(cycle, ev, addr);
        }
        if tel.cfg.trace_events {
            let mut recs: Vec<(u64, u32, u64, u32, Inst)> = Vec::new();
            for (i, slot) in self.tus.iter().enumerate() {
                for r in slot.core.commit_trace.records() {
                    recs.push((r.cycle.0, i as u32, r.seq, r.pc, r.inst));
                }
            }
            recs.sort_unstable_by_key(|&(cycle, tu, seq, _, _)| (cycle, tu, seq));
            for (cycle, tu, seq, pc, inst) in recs {
                let op = disassemble_inst(&inst, |t| format!("@{t}"));
                tel.record_commit(cycle, TraceEvent::Commit { tu, seq, pc, op });
            }
        }
        if let Some(prof) = self.prof.take() {
            tel.profile = Some(prof.report(self.shared.now.0 + 1));
        }
        tel.finalize(self.shared.now.0 + 1).map(Some)
    }

    /// Apply all machine-level actions deferred out of the per-TU ticks.
    /// `occupants` holds the thread id each TU carried at the *start* of the
    /// cycle, so commits from a thread that died mid-cycle are still
    /// attributed to it.
    fn post_cycle(&mut self, occupants: &[Option<u64>]) {
        let now = self.shared.now;

        // Instruction attribution (per-cycle commit deltas).
        for (slot, occ) in self.tus.iter_mut().zip(occupants) {
            let committed = slot.core.stats.committed.get();
            let delta = committed - slot.last_committed;
            slot.last_committed = committed;
            if delta == 0 {
                continue;
            }
            match occ {
                Some(id) if self.shared.wrong_set.contains(*id) => {
                    self.shared.stats.wrong_instructions.add(delta)
                }
                Some(_) => self.shared.stats.parallel_instructions.add(delta),
                None => self.shared.stats.sequential_instructions.add(delta),
            }
        }
        if matches!(self.shared.mode, Mode::Parallel { .. }) {
            self.shared.stats.region_cycles.inc();
        }

        // Kills requested by begin/abort on other TUs.
        for tu in std::mem::take(&mut self.shared.pending_kills) {
            self.tus[tu].core.force_stop();
            self.tus[tu].thread = None;
        }

        // Void announcements from killed / marked-wrong threads so no
        // correct thread deadlocks waiting on them.
        for dead in std::mem::take(&mut self.shared.pending_voids) {
            for slot in &mut self.tus {
                if let Some(t) = slot.thread.as_mut() {
                    t.membuf.void_upstream(ThreadId(dead));
                }
            }
            self.shared.deliveries.retain(
                |d| !matches!(&d.ev, DeliveryEvent::Announce { from, .. } if *from == dead),
            );
            self.shared.ts_log.retain(|e| e.from != dead);
        }

        // Ring deliveries due this cycle.
        let mut due = Vec::new();
        self.shared.deliveries.retain(|d| {
            if d.at <= now {
                due.push(d.clone());
                false
            } else {
                true
            }
        });
        for d in due {
            let Some(tu) = self.shared.alive.get(d.to) else {
                continue;
            };
            let Some(t) = self.tus[tu].thread.as_mut() else {
                continue;
            };
            if t.id.0 != d.to {
                continue;
            }
            match d.ev {
                DeliveryEvent::Announce { addr, from } => {
                    t.membuf.announce_upstream(addr, ThreadId(from))
                }
                DeliveryEvent::Release {
                    addr,
                    bytes,
                    value,
                    from,
                } => t
                    .membuf
                    .release_upstream(addr, bytes, value, ThreadId(from)),
            }
        }

        // Deferred forks whose target TU has become idle.
        let mut still_deferred = Vec::new();
        for f in std::mem::take(&mut self.shared.deferred_forks) {
            if self.shared.tu_busy[f.tu] {
                still_deferred.push(f);
            } else {
                self.shared.tu_busy[f.tu] = true;
                let start_at = now
                    .plus(self.shared.cfg.fork_delay)
                    .plus(self.shared.cfg.fork_per_value * u64::from(f.mask.count_ones()));
                self.shared.pending_forks.push(PendingFork {
                    start_at,
                    tu: f.tu,
                    id: f.id,
                    body: f.body,
                    mask: f.mask,
                    values: f.values,
                });
            }
        }
        self.shared.deferred_forks = still_deferred;

        // Forks whose transfer delay has elapsed: start the thread.
        let mut starting = Vec::new();
        self.shared.pending_forks.retain(|f| {
            if f.start_at <= now {
                starting.push(f.clone());
                false
            } else {
                true
            }
        });
        for f in starting {
            self.start_thread(f, now);
        }

        // Write-back stage: the oldest thread that has finished its body.
        for (i, slot) in self.tus.iter_mut().enumerate() {
            let Some(t) = slot.thread.as_mut() else {
                continue;
            };
            // A thread that reached thread_end *before* being marked wrong
            // must still be squashed before its write-back stage (§3.1.2).
            if t.state == ThreadState::WaitWb && self.shared.wrong_set.contains(t.id.0) {
                let id = t.id.0;
                self.shared.events.record(now, SchedEvent::WrongDied { id });
                self.shared.alive.remove(id);
                self.shared.tu_busy[i] = false;
                self.shared.pending_voids.push(id);
                slot.core.force_stop();
                slot.thread = None;
                continue;
            }
            if t.state == ThreadState::WaitWb && t.id.0 == self.shared.watermark {
                // Commit the memory buffer architecturally, in thread order.
                let words = t.membuf.drain_own();
                let count = words.len() as u64;
                for (addr, mask, value) in words {
                    let mem = &mut self.shared.mem;
                    let mut failed = false;
                    apply_word(addr, mask, value, |a, b| {
                        if mem.write(a, 1, b as u64).is_err() {
                            failed = true;
                        }
                    });
                    if failed {
                        self.shared.fail(SimError::UnmappedAccess {
                            addr,
                            what: "write-back store",
                        });
                    }
                    self.shared.pending_updates.push(addr);
                }
                self.shared.stats.wb_words.add(count);
                self.shared.events.record(
                    now,
                    SchedEvent::WbStart {
                        id: t.id.0,
                        words: count,
                    },
                );
                t.state = ThreadState::WritingBack;
                self.shared.wb_jobs.push(WbJob {
                    id: t.id.0,
                    tu: i,
                    end_at: now.plus((2 * count).max(1)),
                });
            }
        }

        // Completed write-backs: retire threads in order.
        let mut retired = Vec::new();
        self.shared.wb_jobs.retain(|j| {
            if j.end_at <= now {
                retired.push((j.id, j.tu));
                false
            } else {
                true
            }
        });
        retired.sort_unstable();
        for (id, tu) in retired {
            debug_assert_eq!(id, self.shared.watermark);
            self.shared
                .events
                .record(now, SchedEvent::Retired { id, tu });
            self.shared.watermark = id + 1;
            self.shared.alive.remove(id);
            self.shared.tu_busy[tu] = false;
            self.tus[tu].thread = None;
            self.shared.stats.threads_retired.inc();
        }

        // Drain committed-store timing queues through the L1 ports.
        for (tu, slot) in self.tus.iter_mut().enumerate() {
            while let Some(&addr) = slot.sbuf.front() {
                if let Some(tap) = self.shared.tap.as_ref() {
                    tap.borrow_mut().record(AccessRecord {
                        cycle: now.0,
                        tu: tu as u32,
                        pc: 0,
                        addr: addr.0,
                        kind: AccessKind::CorrectStore,
                    });
                }
                slot.dpath.attr_note_pc(0);
                match slot
                    .dpath
                    .access(addr, AccessKind::CorrectStore, now, &mut self.shared.l2)
                {
                    DpResult::Done { .. } => {
                        slot.sbuf.pop_front();
                    }
                    DpResult::Retry => break,
                }
            }
        }

        // Sequential-mode update-protocol broadcasts (§3.2.2): copies in
        // other TUs' caches are refreshed in place; we count the traffic.
        let writer = match self.shared.mode {
            Mode::Sequential { tu } => tu,
            Mode::Parallel { .. } => usize::MAX,
        };
        for addr in std::mem::take(&mut self.shared.pending_updates) {
            self.shared.stats.bus_broadcasts.inc();
            for (i, slot) in self.tus.iter().enumerate() {
                if i != writer && (slot.dpath.l1_contains(addr) || slot.dpath.side_contains(addr)) {
                    self.shared.stats.bus_copies_updated.inc();
                }
            }
        }
    }

    fn start_thread(&mut self, f: PendingFork, now: Cycle) {
        let mut ctx = ThreadCtx::new(ThreadId(f.id));
        // Replay the region's target-store history from still-alive,
        // still-correct older threads (anything older that already retired
        // is visible in memory).
        for ev in &self.shared.ts_log {
            if ev.from < f.id
                && self.shared.alive.contains(ev.from)
                && !self.shared.wrong_set.contains(ev.from)
            {
                ctx.membuf.announce_upstream(ev.addr, ThreadId(ev.from));
                if let Some((bytes, value)) = ev.release {
                    ctx.membuf
                        .release_upstream(ev.addr, bytes, value, ThreadId(ev.from));
                }
            }
        }
        let slot = &mut self.tus[f.tu];
        debug_assert!(slot.thread.is_none(), "fork onto an occupied TU");
        slot.core.arch = self.shared.region_snapshot.clone();
        slot.core.arch.copy_masked_from(&f.values, f.mask);
        slot.core.start(f.body, now);
        slot.last_committed = slot.core.stats.committed.get();
        slot.thread = Some(ctx);
        self.shared.alive.insert(f.id, f.tu);
        self.shared.stats.threads_started.inc();
        self.shared
            .events
            .record(now, SchedEvent::ThreadStart { id: f.id, tu: f.tu });
    }

    /// Aggregate results after a run.
    fn collect(&self) -> RunResult {
        let mut stats = StatSet::new();
        let mut l1d = L1dAggregate::default();
        let mut cond_branches = 0;
        let mut mispredicts = 0;
        for (i, slot) in self.tus.iter().enumerate() {
            slot.core.stats.dump(&mut stats, &format!("tu{i}.core"));
            slot.dpath.stats.dump(&mut stats, &format!("tu{i}.l1d"));
            slot.icache.stats.dump(&mut stats, &format!("tu{i}.l1i"));
            let d = &slot.dpath.stats;
            l1d.demand_accesses += d.demand_accesses.get();
            l1d.demand_misses += d.demand_misses.get();
            l1d.misses_to_next_level += d.demand_misses_to_next_level.get();
            l1d.wrong_accesses += d.wrong_accesses.get();
            l1d.side_hits += d.side_hits.get();
            l1d.useful_wrong_fetches += d.useful_wrong_fetches.get();
            l1d.useful_prefetches += d.useful_prefetches.get();
            l1d.prefetches_issued += d.prefetches_issued.get();
            cond_branches += slot.core.stats.cond_branches.get();
            mispredicts += slot.core.stats.mispredicted_branches.get();
        }
        self.shared.l2.stats.dump(&mut stats, "l2");
        let s = &self.shared.stats;
        let metrics = MachineMetrics {
            cycles: self.shared.now.0 + 1,
            region_cycles: s.region_cycles.get(),
            sequential_instructions: s.sequential_instructions.get(),
            parallel_instructions: s.parallel_instructions.get(),
            wrong_instructions: s.wrong_instructions.get(),
            threads_started: s.threads_started.get(),
            threads_marked_wrong: s.threads_marked_wrong.get(),
            threads_killed: s.threads_killed.get(),
            forks: s.forks.get(),
            regions: s.regions.get(),
            l1d,
            l2_demand_misses: self.shared.l2.stats.demand_misses_to_next_level.get(),
            cond_branches,
            mispredicted_branches: mispredicts,
            wrong_loads_dropped: s.wrong_loads_dropped.get(),
            wb_words: s.wb_words.get(),
            checksum: self.shared.mem.checksum(),
        };
        metrics.dump(&mut stats);
        stats.push("machine.bus_broadcasts", s.bus_broadcasts.get());
        stats.push("machine.bus_copies_updated", s.bus_copies_updated.get());
        stats.push("machine.membuf_value_hits", s.membuf_value_hits.get());
        stats.push("machine.dependence_waits", s.dependence_waits.get());
        RunResult {
            cycles: self.shared.now.0 + 1,
            checksum: self.shared.mem.checksum(),
            metrics,
            stats,
            telemetry: None,
            attribution: self.attribution_report(),
        }
    }

    /// Fold the per-TU attribution probes into one report (`None` when
    /// attribution is off).  Callable both mid-run and after `run`.
    pub fn attribution_report(&self) -> Option<AttributionReport> {
        if self.tus.iter().all(|s| s.dpath.attr.is_none()) {
            return None;
        }
        Some(AttributionReport::from_probes(
            self.tus.iter().filter_map(|s| s.dpath.attr.as_deref()),
        ))
    }

    /// Direct read of committed memory (tests and examples).
    pub fn memory(&self) -> &MemImage {
        &self.shared.mem
    }

    /// The scheduler event log (empty unless `MachineConfig::event_log`).
    pub fn events(&self) -> &EventLog {
        &self.shared.events
    }

    /// A human-readable snapshot of scheduler and per-TU pipeline state —
    /// the first thing to look at when a simulation stops making progress.
    pub fn debug_snapshot(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let sh = &self.shared;
        let _ = writeln!(
            s,
            "cycle {} mode {:?} watermark {} next_thread {} halted {}",
            sh.now, sh.mode, sh.watermark, sh.next_thread, sh.halted
        );
        let _ = writeln!(
            s,
            "alive {:?} wrong {:?} busy {:?}",
            sh.alive, sh.wrong_set, sh.tu_busy
        );
        let _ = writeln!(
            s,
            "pending_forks {:?} deferred {:?} wb_jobs {:?} deliveries {} ts_log {}",
            sh.pending_forks
                .iter()
                .map(|f| (f.id, f.tu, f.start_at.0))
                .collect::<Vec<_>>(),
            sh.deferred_forks
                .iter()
                .map(|f| (f.id, f.tu))
                .collect::<Vec<_>>(),
            sh.wb_jobs
                .iter()
                .map(|j| (j.id, j.tu, j.end_at.0))
                .collect::<Vec<_>>(),
            sh.deliveries.len(),
            sh.ts_log.len(),
        );
        for (i, slot) in self.tus.iter().enumerate() {
            let thread = slot
                .thread
                .as_ref()
                .map(|t| {
                    format!(
                        "{} {:?} forked={} aborted={}",
                        t.id, t.state, t.forked, t.aborted
                    )
                })
                .unwrap_or_else(|| "-".into());
            let _ = writeln!(
                s,
                "tu{i}: running={} rob={} thread[{thread}] {}",
                slot.core.is_running(),
                slot.core.rob_len(),
                slot.core.debug_head(),
            );
            if !slot.core.commit_trace.is_empty() {
                let _ = write!(s, "{}", slot.core.commit_trace.render());
            }
        }
        s
    }
}

/// Convenience: build and run in one call.
pub fn simulate(cfg: MachineConfig, program: &Program) -> SimResult<RunResult> {
    Machine::new(cfg, program)?.run()
}

// ----------------------------------------------------------------------
// The per-TU CoreEnv implementation
// ----------------------------------------------------------------------

struct TuEnv<'a> {
    tu: usize,
    n_tus: usize,
    dpath: &'a mut DataPath,
    icache: &'a mut DataPath,
    sbuf: &'a mut VecDeque<Addr>,
    thread: &'a mut Option<ThreadCtx>,
    shared: &'a mut Shared,
}

impl TuEnv<'_> {
    fn thread_is_wrong(&self) -> bool {
        self.thread
            .as_ref()
            .is_some_and(|t| self.shared.is_wrong(t.id.0))
    }
}

impl CoreEnv for TuEnv<'_> {
    fn load(&mut self, addr: Addr, bytes: u64, now: Cycle, wrong_path: bool, pc: u32) -> MemIssue {
        let kind = if wrong_path {
            AccessKind::WrongPathLoad
        } else if self.thread_is_wrong() {
            AccessKind::WrongThreadLoad
        } else {
            AccessKind::CorrectLoad
        };
        let wrong = kind.is_wrong();

        // Thread-level buffers first: own stores, upstream target stores.
        let mut partial: Option<(u64, u8)> = None;
        if let Some(t) = self.thread.as_ref() {
            match t.membuf.check_load(addr, bytes) {
                LoadCheck::Wait => {
                    if !wrong {
                        self.shared.stats.dependence_waits.inc();
                        return MemIssue::Blocked;
                    }
                    // Wrong execution ignores run-time dependences (§3.1.2);
                    // fall through to (possibly stale) memory.
                }
                LoadCheck::Value(v) => {
                    self.shared.stats.membuf_value_hits.inc();
                    return MemIssue::Done {
                        ready_at: now.plus(1),
                        value: v,
                    };
                }
                LoadCheck::Partial {
                    value,
                    buffered_mask,
                } => partial = Some((value, buffered_mask)),
                LoadCheck::Miss => {}
            }
        }

        let Some(mem_value) = self.shared.mem.try_read(addr, bytes) else {
            // Unmapped: wrong execution and not-yet-resolved speculation
            // both read as zero and skip the cache (a real machine would
            // squash the access at translation).
            if wrong {
                self.shared.stats.wrong_loads_dropped.inc();
            } else {
                self.shared.stats.unmapped_spec_loads.inc();
            }
            return MemIssue::Done {
                ready_at: now.plus(1),
                value: 0,
            };
        };
        let mut value = mem_value;
        if let Some((bval, mask)) = partial {
            for lane in 0..bytes as u32 {
                if mask & (1 << lane) != 0 {
                    value &= !(0xffu64 << (8 * lane));
                    value |= bval & (0xffu64 << (8 * lane));
                }
            }
        }

        if let Some(tap) = self.shared.tap.as_ref() {
            tap.borrow_mut().record(AccessRecord {
                cycle: now.0,
                tu: self.tu as u32,
                pc,
                addr: addr.0,
                kind,
            });
        }
        self.dpath.attr_note_pc(pc);
        match self.dpath.access(addr, kind, now, &mut self.shared.l2) {
            DpResult::Done { ready_at } => {
                if let Some(tel) = self.shared.tel.as_deref_mut() {
                    tel.on_load(self.tu as u32, now.0, addr.0, kind, ready_at.0);
                }
                MemIssue::Done { ready_at, value }
            }
            DpResult::Retry => MemIssue::Retry,
        }
    }

    fn ifetch(&mut self, addr: Addr, now: Cycle) -> MemIssue {
        if let Some(tap) = self.shared.tap.as_ref() {
            tap.borrow_mut().record(AccessRecord {
                cycle: now.0,
                tu: self.tu as u32,
                pc: addr.0 as u32,
                addr: addr.0,
                kind: AccessKind::InstFetch,
            });
        }
        match self
            .icache
            .access(addr, AccessKind::InstFetch, now, &mut self.shared.l2)
        {
            DpResult::Done { ready_at } => MemIssue::Done { ready_at, value: 0 },
            DpResult::Retry => MemIssue::Retry,
        }
    }

    fn commit_store(&mut self, addr: Addr, bytes: u64, value: u64, _now: Cycle) -> bool {
        if let Some(t) = self.thread.as_mut() {
            // Parallel region: stores stay in the speculative memory buffer
            // until the write-back stage; wrong threads never write back.
            t.membuf.record_store(addr, bytes, value);
            let id = t.id.0;
            let is_target = t.membuf.is_own_target_store(addr, bytes);
            // The release may only be broadcast by a thread that is still
            // alive, still on this TU, and not marked wrong.  (A thread
            // killed by a `begin` earlier in this same cycle can still be
            // ticking — after `wrong_set` was cleared — and must not leak a
            // garbage release into the new region.)
            let alive_here = self.shared.alive.get(id) == Some(self.tu);
            if is_target && alive_here && !self.shared.is_wrong(id) {
                self.shared.release_event(id, addr, bytes, value);
            }
            true
        } else {
            // Sequential: architecturally visible immediately; the store
            // buffer models cache port timing.
            if self.shared.mem.write(addr, bytes, value).is_err() {
                self.shared.fail(SimError::UnmappedAccess {
                    addr,
                    what: "store",
                });
                return true;
            }
            self.shared.pending_updates.push(addr);
            if self.sbuf.len() >= self.shared.cfg.core.store_buffer {
                return false;
            }
            self.sbuf.push_back(addr);
            true
        }
    }

    fn sta_commit(&mut self, inst: &Inst, regs: &ArchRegs, now: Cycle) -> StaOutcome {
        // A thread killed earlier in this very cycle (its TU ticks after the
        // killer's) may still reach commit before the deferred kill lands.
        // Nothing it commits may have machine-level effects — especially not
        // a fork, which would create an untracked zombie thread.
        if let Some(t) = self.thread.as_ref() {
            if !self.shared.alive.contains(t.id.0) {
                *self.thread = None;
                return StaOutcome::Stop;
            }
        }
        match *inst {
            Inst::Begin { region } => self.do_begin(region, regs),
            Inst::Fork { mask, body } => self.do_fork(mask, body, regs, now),
            Inst::Abort { seq } => self.do_abort(seq),
            Inst::TsAnnounce { base, off } => {
                let addr = Addr(regs.read_i(base).wrapping_add(off as i64 as u64));
                self.do_tsannounce(addr)
            }
            Inst::TsagDone => self.do_tsagdone(now),
            Inst::ThreadEnd => self.do_thread_end(),
            Inst::Halt => self.do_halt(),
            ref other => {
                self.shared.fail(SimError::IllegalInstruction {
                    pc: 0,
                    what: "non-STA instruction routed to sta_commit",
                });
                let _ = other;
                StaOutcome::Stop
            }
        }
    }
}

impl TuEnv<'_> {
    fn do_begin(&mut self, region: u16, regs: &ArchRegs) -> StaOutcome {
        if self.thread.is_some() {
            self.shared.fail(SimError::IllegalInstruction {
                pc: 0,
                what: "begin inside a parallel region",
            });
            return StaOutcome::Stop;
        }
        // Sweep leftover wrong threads from the previous region.
        self.shared.kill_all_wrong();
        self.shared.wrong_set.clear();
        self.shared.ts_log.clear();
        self.shared.deliveries.clear();
        self.shared.tsag_done.clear();
        self.shared.mode = Mode::Parallel { region };
        self.shared.region_snapshot = regs.clone();
        let id = self.shared.next_thread;
        self.shared.next_thread += 1;
        self.shared.region_first = id;
        self.shared.watermark = id;
        self.shared.alive.insert(id, self.tu);
        self.shared.tu_busy[self.tu] = true;
        *self.thread = Some(ThreadCtx::new(ThreadId(id)));
        self.shared.stats.regions.inc();
        self.shared.stats.threads_started.inc();
        let now = self.shared.now;
        self.shared
            .events
            .record(now, SchedEvent::Begin { region, head: id });
        StaOutcome::Continue
    }

    fn do_fork(&mut self, mask: u32, body: u32, regs: &ArchRegs, now: Cycle) -> StaOutcome {
        let Some(t) = self.thread.as_mut() else {
            self.shared.fail(SimError::IllegalInstruction {
                pc: 0,
                what: "fork outside a parallel region",
            });
            return StaOutcome::Stop;
        };
        if t.forked {
            return StaOutcome::Continue;
        }
        t.forked = true;
        let parent = t.id.0;
        if self.shared.is_wrong(parent) {
            // Wrong threads are not allowed to fork (§3.1.2).
            return StaOutcome::Continue;
        }
        self.shared.stats.forks.inc();
        let target = (self.tu + 1) % self.n_tus;
        let id = self.shared.next_thread;
        self.shared.next_thread += 1;
        if self.shared.tu_busy[target] {
            // The youngest thread delays forking until the TU frees (§2.1).
            self.shared.stats.deferred_forks.inc();
            self.shared.events.record(
                now,
                SchedEvent::ForkDeferred {
                    parent,
                    child: id,
                    tu: target,
                },
            );
            self.shared.deferred_forks.push(DeferredFork {
                tu: target,
                id,
                body,
                mask,
                values: regs.clone(),
            });
        } else {
            self.shared.tu_busy[target] = true;
            let start_at = now
                .plus(self.shared.cfg.fork_delay)
                .plus(self.shared.cfg.fork_per_value * u64::from(mask.count_ones()));
            self.shared.events.record(
                now,
                SchedEvent::ForkScheduled {
                    parent,
                    child: id,
                    tu: target,
                },
            );
            self.shared.pending_forks.push(PendingFork {
                start_at,
                tu: target,
                id,
                body,
                mask,
                values: regs.clone(),
            });
        }
        StaOutcome::Continue
    }

    fn do_abort(&mut self, seq: u32) -> StaOutcome {
        let Some(t) = self.thread.as_mut() else {
            self.shared.fail(SimError::IllegalInstruction {
                pc: 0,
                what: "abort outside a parallel region",
            });
            return StaOutcome::Stop;
        };
        let id = t.id.0;
        if self.shared.is_wrong(id) {
            // A wrong thread's abort kills only itself (§3.1.2).
            let now = self.shared.now;
            self.shared.events.record(now, SchedEvent::WrongDied { id });
            self.shared.alive.remove(id);
            self.shared.tu_busy[self.tu] = false;
            self.shared.pending_voids.push(id);
            *self.thread = None;
            return StaOutcome::Stop;
        }
        if !t.aborted {
            t.aborted = true;
            self.shared.stats.aborts.inc();
            let now = self.shared.now;
            self.shared.events.record(now, SchedEvent::Abort { id });
            self.shared.cut_successors(id);
        }
        // Drain: sequential execution may resume only after every older
        // thread has written back.
        if self.shared.watermark != id {
            return StaOutcome::Stall;
        }
        // Commit this thread's own (continuation-stage) stores and switch
        // the machine to sequential mode on this TU.
        let t = self.thread.as_mut().unwrap();
        for (addr, mask, value) in t.membuf.drain_own() {
            let mem = &mut self.shared.mem;
            let mut failed = false;
            apply_word(addr, mask, value, |a, b| {
                if mem.write(a, 1, b as u64).is_err() {
                    failed = true;
                }
            });
            if failed {
                self.shared.fail(SimError::UnmappedAccess {
                    addr,
                    what: "abort-path store",
                });
            }
        }
        self.shared.alive.remove(id);
        self.shared.watermark = id + 1;
        self.shared.mode = Mode::Sequential { tu: self.tu };
        let now = self.shared.now;
        self.shared
            .events
            .record(now, SchedEvent::Sequential { tu: self.tu });
        *self.thread = None;
        StaOutcome::Redirect(seq)
    }

    fn do_tsannounce(&mut self, addr: Addr) -> StaOutcome {
        let Some(t) = self.thread.as_mut() else {
            self.shared.fail(SimError::IllegalInstruction {
                pc: 0,
                what: "tsannounce outside a parallel region",
            });
            return StaOutcome::Stop;
        };
        let id = t.id.0;
        t.membuf.announce_own(addr);
        if !self.shared.is_wrong(id) {
            self.shared.announce_event(id, addr);
        }
        StaOutcome::Continue
    }

    fn do_tsagdone(&mut self, now: Cycle) -> StaOutcome {
        let Some(t) = self.thread.as_mut() else {
            self.shared.fail(SimError::IllegalInstruction {
                pc: 0,
                what: "tsagdone outside a parallel region",
            });
            return StaOutcome::Stop;
        };
        let id = t.id.0;
        if self.shared.is_wrong(id) {
            // Wrong threads skip the ring synchronization: their upstream
            // may already be dead.
            return StaOutcome::Continue;
        }
        let ready = if id == self.shared.region_first || self.shared.watermark >= id {
            true
        } else {
            match self.shared.tsag_done.get(id - 1) {
                Some(at) => at.plus(self.shared.cfg.ring_latency) <= now,
                None => false,
            }
        };
        if !ready {
            return StaOutcome::Stall;
        }
        t.tsag_done_at = Some(now);
        self.shared.tsag_done.insert(id, now);
        StaOutcome::Continue
    }

    fn do_thread_end(&mut self) -> StaOutcome {
        let Some(t) = self.thread.as_mut() else {
            self.shared.fail(SimError::IllegalInstruction {
                pc: 0,
                what: "thread_end outside a parallel region",
            });
            return StaOutcome::Stop;
        };
        let id = t.id.0;
        if self.shared.is_wrong(id) {
            // Squashed before the write-back stage (§3.1.2).
            let now = self.shared.now;
            self.shared.events.record(now, SchedEvent::WrongDied { id });
            self.shared.alive.remove(id);
            self.shared.tu_busy[self.tu] = false;
            self.shared.pending_voids.push(id);
            *self.thread = None;
            return StaOutcome::Stop;
        }
        t.state = ThreadState::WaitWb;
        StaOutcome::Stop
    }

    fn do_halt(&mut self) -> StaOutcome {
        if self.thread.is_some() {
            self.shared.fail(SimError::IllegalInstruction {
                pc: 0,
                what: "halt inside a parallel region",
            });
            return StaOutcome::Stop;
        }
        self.shared.halted = true;
        StaOutcome::Stop
    }
}
