//! Workload suite construction and the cached, host-parallel run matrix.
//!
//! Every figure in the paper is a sweep over (benchmark × machine
//! configuration).  [`CfgKey`] captures every parameter any figure varies;
//! [`Runner`] memoizes simulation results by (benchmark, key) so sweeps that
//! share points (e.g. the `orig` 8-TU baseline) run once, and fans pending
//! runs out over host threads.  Every run is guarded by the workload
//! self-check, so no experiment can silently report results from a broken
//! simulation.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use wec_core::config::{MachineConfig, ProcPreset};
use wec_core::metrics::MachineMetrics;
use wec_cpu::bpred::BpredKind;
use wec_cpu::config::CoreConfig;
use wec_workloads::{run_and_verify, Bench, Scale, Workload};

/// The built benchmark suite (Table 2 order).
pub struct Suite {
    pub scale: Scale,
    pub workloads: Vec<Workload>,
}

impl Suite {
    /// Build all six analogs at `scale`.
    pub fn build(scale: Scale) -> Suite {
        Suite {
            scale,
            workloads: Bench::ALL.iter().map(|b| b.build(scale)).collect(),
        }
    }

    pub fn names(&self) -> Vec<&'static str> {
        self.workloads.iter().map(|w| w.name).collect()
    }
}

/// Everything the paper's sweeps vary about the machine.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CfgKey {
    pub preset: ProcPreset,
    pub n_tus: u8,
    /// Core issue width (8 = the §5.2 default; Table 3 sweeps it).
    pub width: u8,
    /// L1D capacity in KB.
    pub l1_kb: u16,
    /// L1D associativity.
    pub l1_ways: u8,
    /// Entries in the side structure (WEC / victim cache / prefetch buffer).
    pub side_entries: u8,
    /// L2 capacity in KB.
    pub l2_kb: u16,
    /// L1D block size in bytes.
    pub l1_block: u16,
    /// Main-memory access latency behind the L2 (the §7 memory-latency
    /// ablation; 188 gives the paper's 200-cycle round trip).
    pub mem_latency: u16,
    /// Direction predictor (the §7 branch-accuracy ablation).
    pub bpred: BpredKind,
}

impl CfgKey {
    /// The §5.2 default machine under `preset` with `n_tus` thread units.
    pub fn paper(preset: ProcPreset, n_tus: usize) -> CfgKey {
        CfgKey {
            preset,
            n_tus: n_tus as u8,
            width: 8,
            l1_kb: 8,
            l1_ways: 1,
            side_entries: 8,
            l2_kb: 512,
            l1_block: 64,
            mem_latency: 188,
            bpred: BpredKind::Bimodal,
        }
    }

    /// A Table 3 baseline point: issue 16/n, 4-way L1 sized to 32 KB/n.
    pub fn table3(n_tus: usize) -> CfgKey {
        CfgKey {
            preset: ProcPreset::Orig,
            n_tus: n_tus as u8,
            width: (16 / n_tus) as u8,
            l1_kb: (32 / n_tus) as u16,
            l1_ways: 4,
            side_entries: 8,
            l2_kb: 512,
            l1_block: 64,
            mem_latency: 188,
            bpred: BpredKind::Bimodal,
        }
    }

    /// The Figure 8 reference point: 1 TU, single issue, 2 KB 4-way L1.
    pub fn single_issue() -> CfgKey {
        CfgKey {
            preset: ProcPreset::Orig,
            n_tus: 1,
            width: 1,
            l1_kb: 2,
            l1_ways: 4,
            side_entries: 8,
            l2_kb: 512,
            l1_block: 64,
            mem_latency: 188,
            bpred: BpredKind::Bimodal,
        }
    }

    /// Compact, stable identity string used in progress lines, run
    /// manifests and drift reports (every field that distinguishes
    /// configurations appears, so two keys never share a label).
    pub fn label(&self) -> String {
        format!(
            "{}/t{}/w{}/l1_{}k_{}w_b{}/side{}/l2_{}k/m{}/{:?}",
            self.preset.name(),
            self.n_tus,
            self.width,
            self.l1_kb,
            self.l1_ways,
            self.l1_block,
            self.side_entries,
            self.l2_kb,
            self.mem_latency,
            self.bpred,
        )
    }

    /// Materialize the machine configuration.
    pub fn build(self) -> MachineConfig {
        let mut cfg = MachineConfig::paper_default(self.n_tus as usize);
        if self.width != 8 {
            cfg.core = CoreConfig::with_width(self.width as u32);
        }
        cfg.l1d.capacity_bytes = self.l1_kb as u64 * 1024;
        cfg.l1d.ways = self.l1_ways as usize;
        cfg.l1d.side_entries = self.side_entries as usize;
        cfg.l1d.block_bytes = self.l1_block as u64;
        cfg.l2.capacity_bytes = self.l2_kb as u64 * 1024;
        cfg.l2.memory_latency = self.mem_latency as u64;
        cfg.core.bpred = self.bpred;
        // The preset must be applied after any core rebuild (it sets the
        // wrong-path switch inside the core config).
        cfg.apply_preset(self.preset);
        cfg
    }
}

/// FNV-1a over a byte string; stable across runs and platforms, unlike the
/// std hasher.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// How a requested (benchmark, configuration) point was satisfied.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheSource {
    /// Simulated in this process.
    Cold,
    /// Loaded from the persistent on-disk store.
    Disk,
    /// Served by the in-process memo table.
    Mem,
}

impl CacheSource {
    /// Stable lowercase name used in `progress.jsonl`.
    pub fn name(self) -> &'static str {
        match self {
            CacheSource::Cold => "cold",
            CacheSource::Disk => "disk",
            CacheSource::Mem => "mem",
        }
    }
}

/// Per-lookup cache-path counters: how a sweep's points were satisfied.
/// Without these a fully-warm replay is indistinguishable from a cold run
/// except by wall clock.
#[derive(Default)]
pub struct CacheCounters {
    cold: AtomicU64,
    disk_hits: AtomicU64,
    mem_hits: AtomicU64,
}

impl CacheCounters {
    fn count(&self, src: CacheSource) {
        let slot = match src {
            CacheSource::Cold => &self.cold,
            CacheSource::Disk => &self.disk_hits,
            CacheSource::Mem => &self.mem_hits,
        };
        slot.fetch_add(1, Ordering::Relaxed);
    }

    /// Simulations actually run in this process.
    pub fn cold(&self) -> u64 {
        self.cold.load(Ordering::Relaxed)
    }

    /// Points satisfied from the persistent on-disk store.
    pub fn disk_hits(&self) -> u64 {
        self.disk_hits.load(Ordering::Relaxed)
    }

    /// Lookups served by the in-process memo table (shared sweep points).
    pub fn mem_hits(&self) -> u64 {
        self.mem_hits.load(Ordering::Relaxed)
    }

    /// Fraction of *distinct* simulations satisfied by the persistent store
    /// instead of running cold (the cold-vs-warm replay signal).
    pub fn hit_rate(&self) -> f64 {
        let distinct = self.cold() + self.disk_hits();
        if distinct == 0 {
            0.0
        } else {
            self.disk_hits() as f64 / distinct as f64
        }
    }
}

/// Observer of individual simulations inside a sweep (progress streams,
/// live renderers).  Called from host worker threads, so it must be
/// thread-safe; `worker` is the host-thread index doing the work.
pub trait RunObserver: Send + Sync {
    /// A point missed every cache and started simulating.
    fn sim_started(&self, bench: &'static str, key: &CfgKey, worker: usize);
    /// A point was resolved (`src` says how; `dur_ms` is 0 for cache hits).
    fn sim_finished(
        &self,
        bench: &'static str,
        key: &CfgKey,
        worker: usize,
        src: CacheSource,
        dur_ms: u64,
        sim_cycles: u64,
    );
}

/// A memoizing, host-parallel simulation runner over one suite.
///
/// Results are memoized at two levels: an in-process map, and (unless
/// disabled) a persistent on-disk store of `MachineMetrics` key-value
/// files, so re-running `experiments` after the first sweep reads results
/// instead of re-simulating.  Disk entries are keyed by benchmark, scale,
/// the full [`CfgKey`] and [`wec_core::SIM_REVISION`], so any change to
/// the machine configuration or to simulator semantics misses cleanly.
pub struct Runner<'a> {
    suite: &'a Suite,
    cache: Mutex<HashMap<(usize, CfgKey), MachineMetrics>>,
    /// Directory of the persistent result store, if enabled.
    disk: Option<PathBuf>,
    /// Explicit host-thread count for [`Runner::warm`] (`--jobs`); falls
    /// back to [`default_hosts`] when unset.
    hosts: Option<usize>,
    counters: CacheCounters,
    obs: Option<Arc<dyn RunObserver>>,
}

/// Default location of the on-disk result store: `target/wec-result-cache`
/// at the workspace root, overridable with `WEC_RESULT_CACHE`.
pub fn default_disk_dir() -> PathBuf {
    match std::env::var_os("WEC_RESULT_CACHE") {
        Some(dir) => PathBuf::from(dir),
        None => Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/wec-result-cache"),
    }
}

/// Host worker count for parallel sweeps: the `WEC_JOBS` environment
/// variable when set to a positive integer, otherwise the machine's
/// available parallelism.  `experiments --jobs N` and the serve daemon's
/// `--workers N` override this per invocation; the env var is how a daemon
/// and interactive sweeps are kept from oversubscribing one host.
pub fn default_hosts() -> usize {
    if let Some(v) = std::env::var_os("WEC_JOBS") {
        if let Some(n) = v.to_str().and_then(|s| s.trim().parse::<usize>().ok()) {
            if n > 0 {
                return n;
            }
        }
        eprintln!("ignoring WEC_JOBS={v:?}: not a positive integer");
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

impl<'a> Runner<'a> {
    /// Runner with the persistent disk store at [`default_disk_dir`].
    pub fn new(suite: &'a Suite) -> Self {
        Self::with_disk_dir(suite, default_disk_dir())
    }

    /// Runner with only the in-process cache (the `--no-cache` escape
    /// hatch, and what hermetic tests should use unless they test the
    /// store itself).
    pub fn without_disk_cache(suite: &'a Suite) -> Self {
        Runner {
            suite,
            cache: Mutex::new(HashMap::new()),
            disk: None,
            hosts: None,
            counters: CacheCounters::default(),
            obs: None,
        }
    }

    /// Runner with the persistent store rooted at `dir` (tests point this
    /// at a scratch directory).
    pub fn with_disk_dir(suite: &'a Suite, dir: PathBuf) -> Self {
        Runner {
            suite,
            cache: Mutex::new(HashMap::new()),
            disk: Some(dir),
            hosts: None,
            counters: CacheCounters::default(),
            obs: None,
        }
    }

    /// Attach a [`RunObserver`] notified of every simulation start/finish.
    pub fn set_observer(&mut self, obs: Arc<dyn RunObserver>) {
        self.obs = Some(obs);
    }

    /// Pin the host-thread count [`Runner::warm`] fans out over
    /// (`experiments --jobs N`).  Unset, [`default_hosts`] decides.
    pub fn set_hosts(&mut self, hosts: usize) {
        self.hosts = Some(hosts.max(1));
    }

    /// Cache-path accounting for everything this runner resolved.
    pub fn counters(&self) -> &CacheCounters {
        &self.counters
    }

    /// Every memoized point: `(benchmark name, key, metrics)`, in no
    /// particular order (manifest writers sort by label).
    pub fn snapshot(&self) -> Vec<(&'static str, CfgKey, MachineMetrics)> {
        self.cache
            .lock()
            .unwrap()
            .iter()
            .map(|(&(bench, key), m)| (self.suite.workloads[bench].name, key, m.clone()))
            .collect()
    }

    pub fn suite(&self) -> &Suite {
        self.suite
    }

    /// The persistent store directory, if enabled.
    pub fn disk_dir(&self) -> Option<&Path> {
        self.disk.as_deref()
    }

    fn run_one(w: &Workload, key: CfgKey) -> MachineMetrics {
        let cfg = key.build();
        match run_and_verify(w, cfg) {
            Ok(r) => r.metrics,
            Err(e) => panic!("{} under {key:?}: {e}", w.name),
        }
    }

    /// Path of the on-disk entry for one point.  The filename keeps the
    /// benchmark and scale readable and folds everything that determines
    /// the result — including the simulator revision — into the hash.
    fn disk_path(&self, bench_idx: usize, key: CfgKey) -> Option<PathBuf> {
        let dir = self.disk.as_ref()?;
        let name = self.suite.workloads[bench_idx].name;
        let scale = self.suite.scale.units;
        let id = format!("{name}|{scale}|{key:?}|rev{}", wec_core::SIM_REVISION);
        Some(dir.join(format!("{name}_{scale}_{:016x}.kv", fnv1a(id.as_bytes()))))
    }

    /// Read a point from the disk store.  Unreadable or unparsable files
    /// are treated as misses (the entry will be recomputed and rewritten).
    fn disk_load(&self, bench_idx: usize, key: CfgKey) -> Option<MachineMetrics> {
        let path = self.disk_path(bench_idx, key)?;
        let text = std::fs::read_to_string(path).ok()?;
        MachineMetrics::from_kv(&text).ok()
    }

    /// Write a point to the disk store.  Best-effort: a read-only or
    /// missing target directory silently degrades to in-process caching.
    /// The write goes through [`crate::store::atomic_write`], so concurrent
    /// writers and readers never see partial files.
    fn disk_store(&self, bench_idx: usize, key: CfgKey, m: &MachineMetrics) {
        let Some(path) = self.disk_path(bench_idx, key) else {
            return;
        };
        crate::store::atomic_write_best_effort(&path, &m.to_kv());
    }

    /// Run one cold point on `worker`, with observer + counter bookkeeping.
    fn run_cold(&self, bench_idx: usize, key: CfgKey, worker: usize) -> MachineMetrics {
        let name = self.suite.workloads[bench_idx].name;
        self.counters.count(CacheSource::Cold);
        if let Some(obs) = &self.obs {
            obs.sim_started(name, &key, worker);
        }
        let t = Instant::now();
        let m = Self::run_one(&self.suite.workloads[bench_idx], key);
        self.disk_store(bench_idx, key, &m);
        if let Some(obs) = &self.obs {
            obs.sim_finished(
                name,
                &key,
                worker,
                CacheSource::Cold,
                t.elapsed().as_millis() as u64,
                m.cycles,
            );
        }
        m
    }

    /// Count a disk-store hit and surface it to the observer.
    fn note_disk_hit(&self, bench_idx: usize, key: CfgKey, worker: usize, m: &MachineMetrics) {
        self.counters.count(CacheSource::Disk);
        if let Some(obs) = &self.obs {
            obs.sim_finished(
                self.suite.workloads[bench_idx].name,
                &key,
                worker,
                CacheSource::Disk,
                0,
                m.cycles,
            );
        }
    }

    /// Metrics for one (benchmark, configuration) point, simulated at most
    /// once per runner (and, with the disk store, at most once per machine
    /// per simulator revision).
    pub fn metrics(&self, bench_idx: usize, key: CfgKey) -> MachineMetrics {
        if let Some(m) = self.cache.lock().unwrap().get(&(bench_idx, key)) {
            self.counters.count(CacheSource::Mem);
            return m.clone();
        }
        let m = match self.disk_load(bench_idx, key) {
            Some(m) => {
                self.note_disk_hit(bench_idx, key, 0, &m);
                m
            }
            None => self.run_cold(bench_idx, key, 0),
        };
        self.cache
            .lock()
            .unwrap()
            .insert((bench_idx, key), m.clone());
        m
    }

    /// Simulate the given points in parallel across host threads, filling
    /// the cache (results are deterministic regardless of scheduling — the
    /// simulator itself is single-threaded and seeded).  The thread count
    /// is [`Runner::set_hosts`] if pinned, else [`default_hosts`].
    pub fn warm(&self, points: &[(usize, CfgKey)]) {
        self.warm_with_hosts(points, self.hosts.unwrap_or_else(default_hosts));
    }

    /// [`Runner::warm`] with an explicit host-thread count (determinism
    /// tests sweep this to show results do not depend on scheduling).
    pub fn warm_with_hosts(&self, points: &[(usize, CfgKey)], hosts: usize) {
        let mut pending: Vec<(usize, CfgKey)> = {
            let cache = self.cache.lock().unwrap();
            points
                .iter()
                .copied()
                .filter(|p| !cache.contains_key(p))
                .collect()
        };
        // Satisfy what we can from the disk store before spawning workers.
        if self.disk.is_some() {
            pending.retain(|&(bench, key)| match self.disk_load(bench, key) {
                Some(m) => {
                    self.note_disk_hit(bench, key, 0, &m);
                    self.cache.lock().unwrap().insert((bench, key), m);
                    false
                }
                None => true,
            });
        }
        if pending.is_empty() {
            return;
        }
        let hosts = hosts.max(1).min(pending.len());
        let next = AtomicUsize::new(0);
        let me = self;
        let pending = &pending;
        let next = &next;
        std::thread::scope(|s| {
            for worker in 0..hosts {
                s.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&(bench, key)) = pending.get(i) else {
                        return;
                    };
                    let m = me.run_cold(bench, key, worker);
                    me.cache.lock().unwrap().insert((bench, key), m);
                });
            }
        });
    }

    /// Warm every benchmark under every given configuration.
    pub fn warm_all_benches(&self, keys: &[CfgKey]) {
        let points: Vec<(usize, CfgKey)> = (0..self.suite.workloads.len())
            .flat_map(|b| keys.iter().map(move |&k| (b, k)))
            .collect();
        self.warm(&points);
    }

    /// Number of distinct simulations performed so far.
    pub fn simulations(&self) -> usize {
        self.cache.lock().unwrap().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfgkey_builds_the_paper_machine() {
        let cfg = CfgKey::paper(ProcPreset::WthWpWec, 8).build();
        assert_eq!(cfg.n_tus, 8);
        assert_eq!(cfg.core.width, 8);
        assert!(cfg.core.wrong_path_loads);
        assert_eq!(cfg.l1d.capacity_bytes, 8 * 1024);
        assert_eq!(cfg.l1d.side_entries, 8);
        assert_eq!(cfg.l2.capacity_bytes, 512 * 1024);
    }

    #[test]
    fn table3_key_matches_config_table3() {
        for tus in [1usize, 2, 4, 8, 16] {
            let a = CfgKey::table3(tus).build();
            let b = MachineConfig::table3(tus).unwrap();
            assert_eq!(a.core.width, b.core.width);
            assert_eq!(a.l1d.capacity_bytes, b.l1d.capacity_bytes);
            assert_eq!(a.l1d.ways, b.l1d.ways);
        }
    }

    #[test]
    fn preset_applied_after_width_override() {
        let mut key = CfgKey::paper(ProcPreset::Wp, 2);
        key.width = 4;
        let cfg = key.build();
        assert_eq!(cfg.core.width, 4);
        assert!(
            cfg.core.wrong_path_loads,
            "wp switch lost by width override"
        );
    }
}
