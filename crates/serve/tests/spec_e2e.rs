//! End-to-end speculation tests: live daemons on ephemeral ports, one
//! with `--speculate` semantics (ServeConfig.spec set) and one without,
//! driven over real sockets with real scale-1 simulations.
//!
//! The battery pins the four acceptance properties of the speculative
//! prefetch subsystem:
//!
//! 1. **Off-mode identity** — with speculation off, every artifact
//!    (`/stats`, `/metrics`, `jobs.jsonl`, the dashboard feed) is the
//!    plain v1 surface with no speculation token anywhere.
//! 2. **Byte-identical hits** — a sweep-walk demand stream is answered
//!    mostly from speculated results (`source:"spec"`), and every such
//!    answer is byte-identical to the same point computed on demand by a
//!    speculation-free server.
//! 3. **Conservation on every scrape** — at every `/metrics` sample,
//!    `hit + waste + cancelled + pending == started`.
//! 4. **Race safety** — concurrent demands for an already-speculated
//!    point never recompute it: one claims the parked result, the other
//!    is an ordinary memo hit.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use wec_serve::{ServeConfig, Server, ServerState, SpecConfig};
use wec_telemetry::json::{self, Json};
use wec_telemetry::schema;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wec-spec-e2e-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

type ServerHandle = (
    Arc<ServerState>,
    SocketAddr,
    std::thread::JoinHandle<std::io::Result<()>>,
);

fn start(cfg: ServeConfig) -> ServerHandle {
    let server = Server::bind("127.0.0.1:0", cfg).unwrap();
    let state = server.state();
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run());
    (state, addr, handle)
}

fn spec_cfg(store: PathBuf, log_dir: Option<PathBuf>) -> ServeConfig {
    ServeConfig {
        workers: 2,
        queue_cap: 16,
        store: Some(store),
        log_dir,
        spec: Some(SpecConfig {
            fanout: 4,
            queue_cap: 16,
            inflight_max: 2,
            ttl: Duration::from_secs(600),
        }),
        ..ServeConfig::default()
    }
}

fn send_raw(addr: SocketAddr, raw: &[u8]) -> String {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_nodelay(true).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    let _ = s.write_all(raw);
    let _ = s.shutdown(std::net::Shutdown::Write);
    let mut out = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match s.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => out.extend_from_slice(&buf[..n]),
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn dechunk(body: &str) -> String {
    let mut out = String::new();
    let mut rest = body;
    loop {
        let (len_line, after) = rest.split_once("\r\n").expect("chunk size line");
        let len = usize::from_str_radix(len_line.trim(), 16).expect("hex chunk size");
        if len == 0 {
            break;
        }
        out.push_str(&after[..len]);
        rest = &after[len + 2..];
    }
    out
}

fn parse_response(text: &str) -> (u16, String) {
    let (head, body) = text.split_once("\r\n\r\n").expect("no header terminator");
    let status = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    if head
        .to_ascii_lowercase()
        .contains("transfer-encoding: chunked")
    {
        (status, dechunk(body))
    } else {
        (status, body.to_string())
    }
}

fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let mut raw = format!("{method} {path} HTTP/1.1\r\nHost: e2e\r\nConnection: close\r\n");
    if let Some(b) = body {
        raw.push_str(&format!(
            "Content-Type: application/json\r\nContent-Length: {}\r\n",
            b.len()
        ));
    }
    raw.push_str("\r\n");
    if let Some(b) = body {
        raw.push_str(b);
    }
    parse_response(&send_raw(addr, raw.as_bytes()))
}

fn poll_terminal(addr: SocketAddr, id: u64) -> Json {
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let (status, body) = request(addr, "GET", &format!("/jobs/{id}"), None);
        assert_eq!(status, 200, "{body}");
        let v = json::parse(&body).unwrap();
        let state = v.get("state").and_then(Json::as_str).unwrap().to_string();
        if state == "done" || state == "failed" || state == "cancelled" {
            return v;
        }
        assert!(Instant::now() < deadline, "job {id} stuck in {state}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn u64_at(v: &Json, path: &[&str]) -> u64 {
    let mut cur = v;
    for p in path {
        cur = cur.get(p).unwrap_or_else(|| panic!("missing {p}"));
    }
    cur.as_u64().unwrap()
}

/// Wait until all work (demand and speculative) has settled so parked
/// results are actually parked before the next demand arrives.
fn settle(state: &Arc<ServerState>) {
    let deadline = Instant::now() + Duration::from_secs(300);
    while state.outstanding() > 0 {
        assert!(Instant::now() < deadline, "speculation never settled");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Read one exact counter off a Prometheus-style page; 0 when absent.
fn metric(page: &str, name: &str) -> u64 {
    page.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .map(|rest| rest.trim().parse().unwrap())
        .unwrap_or(0)
}

/// Assert the speculation ledger conserves on a live `/metrics` scrape.
fn assert_scrape_conserves(addr: SocketAddr) {
    let (s, page) = request(addr, "GET", "/metrics", None);
    assert_eq!(s, 200);
    let started = metric(&page, "wec_serve_spec_started_total");
    let hit = metric(&page, "wec_serve_spec_hit_total");
    let waste = metric(&page, "wec_serve_spec_waste_total");
    let cancelled = metric(&page, "wec_serve_spec_cancelled_total");
    let pending = metric(&page, "wec_serve_spec_pending");
    assert_eq!(
        hit + waste + cancelled + pending,
        started,
        "spec ledger leaked on scrape:\n{page}"
    );
}

fn walk_body(side: u8) -> String {
    format!("{{\"bench\": \"181.mcf\", \"scale\": 1, \"cfg\": {{\"side_entries\": {side}, \"l1_ways\": 1}}}}")
}

/// Submit and poll one demand point; returns (source, result.kv bytes).
fn demand(addr: SocketAddr, body: &str) -> (String, String) {
    let (s, resp) = request(addr, "POST", "/jobs", Some(body));
    assert_eq!(s, 200, "{resp}");
    let v = json::parse(&resp).unwrap();
    let id = u64_at(&v, &["id"]);
    let rec = if v.get("state").unwrap().as_str() == Some("done") {
        v
    } else {
        poll_terminal(addr, id)
    };
    schema::validate_job_record(&rec, "demand record").unwrap();
    assert_eq!(rec.get("state").unwrap().as_str(), Some("done"));
    let source = rec.get("source").unwrap().as_str().unwrap().to_string();
    let (ks, kv) = request(addr, "GET", &format!("/jobs/{id}/result.kv"), None);
    assert_eq!(ks, 200);
    (source, kv)
}

#[test]
fn speculation_off_emits_the_v1_surface_with_no_spec_tokens() {
    let logs = scratch("off-logs");
    let (_state, addr, handle) = start(ServeConfig {
        workers: 2,
        queue_cap: 8,
        store: Some(scratch("off-store")),
        log_dir: Some(logs.clone()),
        ..ServeConfig::default()
    });

    let (src, kv) = demand(addr, &walk_body(8));
    assert_eq!(src, "cold");
    assert!(kv.contains("cycles "), "{kv:?}");

    // /stats is the v1 document, with no speculation field anywhere.
    let (s, stats) = request(addr, "GET", "/stats", None);
    assert_eq!(s, 200);
    schema::validate_serve_stats_json(&stats).unwrap();
    assert!(stats.contains("\"schema\":\"wec-serve-stats-v1\""), "{stats}");
    assert!(!stats.contains("spec"), "{stats}");

    // /metrics carries no speculation series and no spec source split.
    let (s, page) = request(addr, "GET", "/metrics", None);
    assert_eq!(s, 200);
    assert!(!page.contains("wec_serve_spec_"), "{page}");
    assert!(!page.contains("source=\"spec\""), "{page}");

    // The dashboard feed validates and embeds the same v1 stats.
    let (s, dash) = request(addr, "GET", "/dashboard/data", None);
    assert_eq!(s, 200);
    schema::validate_dashboard_data_json(&dash).unwrap();
    assert!(!dash.contains("speculative"), "{dash}");

    let (s, _) = request(addr, "POST", "/shutdown", None);
    assert_eq!(s, 200);
    handle.join().unwrap().unwrap();

    // The terminal log has no speculative records.
    let jobs = std::fs::read_to_string(logs.join("jobs.jsonl")).unwrap();
    schema::validate_jobs_jsonl(&jobs).unwrap();
    assert!(!jobs.contains("speculative"), "{jobs}");
    let stats = std::fs::read_to_string(logs.join("stats.json")).unwrap();
    assert!(!stats.contains("spec"), "{stats}");
}

#[test]
fn sweep_walk_is_served_speculatively_and_byte_identical_to_on_demand() {
    let logs = scratch("walk-logs");
    let (on_state, on_addr, on_handle) = start(spec_cfg(scratch("walk-store-on"), Some(logs.clone())));
    let (_off_state, off_addr, off_handle) = start(ServeConfig {
        workers: 2,
        queue_cap: 16,
        store: Some(scratch("walk-store-off")),
        log_dir: None,
        ..ServeConfig::default()
    });

    // One client walking the sorted side-entries axis — the shape the
    // predictor is built for.  After each demand the server is allowed to
    // settle so its speculations finish and park.
    let walk: [u8; 8] = [2, 4, 8, 16, 24, 32, 64, 128];
    let mut spec_hits = 0usize;
    for side in walk {
        let body = walk_body(side);
        let (source, kv) = demand(on_addr, &body);
        // Same point computed on demand by the speculation-free server.
        let (off_source, off_kv) = demand(off_addr, &body);
        assert_eq!(off_source, "cold");
        assert_eq!(kv, off_kv, "side {side}: speculated result diverged");
        if source == "spec" {
            spec_hits += 1;
        }
        assert_scrape_conserves(on_addr);
        settle(&on_state);
    }
    assert!(
        spec_hits * 100 >= walk.len() * 30,
        "only {spec_hits}/{} demand points were speculative warm hits",
        walk.len()
    );

    // The stats document is v2 and internally conserved (the validator
    // enforces both ledgers), and the dashboard feed carries it.
    let (s, stats) = request(on_addr, "GET", "/stats", None);
    assert_eq!(s, 200);
    schema::validate_serve_stats_json(&stats).unwrap();
    let v = json::parse(&stats).unwrap();
    assert_eq!(
        v.get("schema").unwrap().as_str(),
        Some("wec-serve-stats-v2")
    );
    assert_eq!(u64_at(&v, &["cache", "spec_hits"]), spec_hits as u64);
    let (s, dash) = request(on_addr, "GET", "/dashboard/data", None);
    assert_eq!(s, 200);
    schema::validate_dashboard_data_json(&dash).unwrap();

    let (s, _) = request(on_addr, "POST", "/shutdown", None);
    assert_eq!(s, 200);
    on_handle.join().unwrap().unwrap();
    let (s, _) = request(off_addr, "POST", "/shutdown", None);
    assert_eq!(s, 200);
    off_handle.join().unwrap().unwrap();

    // Drained logs validate with the speculative vocabulary.
    let jobs = std::fs::read_to_string(logs.join("jobs.jsonl")).unwrap();
    let report = schema::validate_jobs_jsonl(&jobs).unwrap();
    assert!(report.done >= walk.len() as u64, "{report:?}");
    let stats = std::fs::read_to_string(logs.join("stats.json")).unwrap();
    schema::validate_serve_stats_json(&stats).unwrap();
    assert!(stats.contains("\"schema\":\"wec-serve-stats-v2\""), "{stats}");
}

#[test]
fn racing_demands_for_a_speculated_point_never_recompute_it() {
    let (state, addr, handle) = start(spec_cfg(scratch("race-store"), None));

    // Teach the predictor a step so side 4 gets speculated, then let the
    // speculation finish and park.
    let (src, _) = demand(addr, &walk_body(2));
    assert_eq!(src, "cold");
    settle(&state);

    let (s, page) = request(addr, "GET", "/metrics", None);
    assert_eq!(s, 200);
    let cold_before = metric(&page, "wec_serve_jobs_completed_total{source=\"cold\"}");

    // Two concurrent demands for the speculated point: one claims the
    // parked result (source "spec"), the other reads the memo ("mem"),
    // and neither causes a recomputation.
    let body = walk_body(4);
    let (r1, r2) = std::thread::scope(|sc| {
        let a = sc.spawn(|| demand(addr, &body));
        let b = sc.spawn(|| demand(addr, &body));
        (a.join().unwrap(), b.join().unwrap())
    });
    let mut sources = [r1.0.as_str(), r2.0.as_str()];
    sources.sort();
    assert_eq!(sources, ["mem", "spec"], "exactly one spec claim");
    assert_eq!(r1.1, r2.1, "racing readers saw different bytes");

    let (s, page) = request(addr, "GET", "/metrics", None);
    assert_eq!(s, 200);
    let cold_after = metric(&page, "wec_serve_jobs_completed_total{source=\"cold\"}");
    assert_eq!(cold_before, cold_after, "the race caused a recomputation");
    assert_scrape_conserves(addr);

    let (s, _) = request(addr, "POST", "/shutdown", None);
    assert_eq!(s, 200);
    handle.join().unwrap().unwrap();
    assert_eq!(state.outstanding(), 0);
}

#[test]
fn saturated_demand_latency_with_speculation_stays_close_to_off() {
    let bodies: Vec<String> = [8u8, 16, 32, 64].iter().map(|&s| walk_body(s)).collect();

    let p99_of = |addr: SocketAddr, state: &Arc<ServerState>| -> Duration {
        // Prewarm each distinct point so the measured phase exercises the
        // steady-state serving path on both servers.
        for b in &bodies {
            demand(addr, b);
        }
        settle(state);
        let lat: std::sync::Mutex<Vec<Duration>> = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|sc| {
            for t in 0..4usize {
                let (lat, bodies) = (&lat, &bodies);
                sc.spawn(move || {
                    for i in 0..6usize {
                        let t0 = Instant::now();
                        demand(addr, &bodies[(t + i) % bodies.len()]);
                        lat.lock().unwrap().push(t0.elapsed());
                    }
                });
            }
        });
        let mut lat = lat.into_inner().unwrap();
        lat.sort();
        lat[(lat.len() * 99).div_ceil(100) - 1]
    };

    let (off_state, off_addr, off_handle) = start(ServeConfig {
        workers: 2,
        queue_cap: 16,
        store: Some(scratch("p99-store-off")),
        log_dir: None,
        ..ServeConfig::default()
    });
    let p99_off = p99_of(off_addr, &off_state);
    let (s, _) = request(off_addr, "POST", "/shutdown", None);
    assert_eq!(s, 200);
    off_handle.join().unwrap().unwrap();

    let (on_state, on_addr, on_handle) = start(spec_cfg(scratch("p99-store-on"), None));
    let p99_on = p99_of(on_addr, &on_state);
    assert_scrape_conserves(on_addr);
    let (s, _) = request(on_addr, "POST", "/shutdown", None);
    assert_eq!(s, 200);
    on_handle.join().unwrap().unwrap();

    // The 100ms floor absorbs scheduler noise on tiny absolute latencies;
    // the ratio is the real gate once latencies are measurable.
    let budget = std::cmp::max(
        Duration::from_secs_f64(p99_off.as_secs_f64() * 1.15),
        p99_off + Duration::from_millis(100),
    );
    assert!(
        p99_on <= budget,
        "demand p99 degraded under speculation: off {p99_off:?}, on {p99_on:?}"
    );
}
