//! The shared, unified second-level cache.
//!
//! All thread units share one L2 for instructions and data (paper Figure 1).
//! Default geometry is the paper's: 512 KB, 4-way, 128-byte blocks.  The L2
//! accepts one request per cycle (pipelined); misses go to main memory, and
//! concurrent misses to the same block merge in the L2 MSHRs.

use crate::cache::{Cache, CacheGeometry};
use crate::dram::MainMemory;
use crate::line::LineFlags;
use crate::mshr::{MshrOutcome, Mshrs};
use crate::stats::{AccessKind, CacheStats};
use wec_common::error::SimResult;
use wec_common::ids::{Addr, Cycle};
use wec_common::stats::Counter;
use wec_telemetry::{CacheEvent, CacheTrace};

/// Configuration for [`SharedL2`].
#[derive(Clone, Copy, Debug)]
pub struct L2Config {
    pub capacity_bytes: u64,
    pub ways: usize,
    pub block_bytes: u64,
    /// Latency of a hit, request to data.
    pub hit_latency: u64,
    /// Main-memory access latency (L2 miss adds this on top of the hit
    /// latency, giving the paper's ~200-cycle round trip).
    pub memory_latency: u64,
    /// Main-memory bandwidth: minimum cycles between request starts.
    pub memory_gap: u64,
    pub mshrs: usize,
}

impl Default for L2Config {
    /// The paper's default L2 (§4.1) with a 200-cycle total miss round trip.
    fn default() -> Self {
        L2Config {
            capacity_bytes: 512 * 1024,
            ways: 4,
            block_bytes: 128,
            hit_latency: 12,
            memory_latency: 188,
            memory_gap: 4,
            mshrs: 32,
        }
    }
}

/// The shared L2 plus the main memory behind it.
pub struct SharedL2 {
    cache: Cache,
    memory: MainMemory,
    hit_latency: u64,
    mshrs: Mshrs,
    /// One new request accepted per cycle.
    next_accept: Cycle,
    pub stats: CacheStats,
    /// Cycles requests waited for the L2 request port.
    pub port_wait_cycles: Counter,
    /// Gated telemetry buffer (misses to memory); drained by the machine.
    pub trace: CacheTrace,
}

impl SharedL2 {
    pub fn new(cfg: L2Config) -> SimResult<Self> {
        let geom = CacheGeometry::from_capacity(cfg.capacity_bytes, cfg.ways, cfg.block_bytes)?;
        Ok(SharedL2 {
            cache: Cache::new(geom),
            memory: MainMemory::new(cfg.memory_latency, cfg.memory_gap),
            hit_latency: cfg.hit_latency,
            mshrs: Mshrs::new(cfg.mshrs, cfg.block_bytes),
            next_accept: Cycle::ZERO,
            stats: CacheStats::default(),
            port_wait_cycles: Counter::default(),
            trace: CacheTrace::default(),
        })
    }

    pub fn geometry(&self) -> CacheGeometry {
        self.cache.geometry()
    }

    /// Access the L2 for the block containing `addr`.  `write` marks the
    /// block dirty (an L1 write-back allocates here).  Returns the cycle the
    /// data (or write acknowledgment) is available at the requesting L1.
    pub fn access(&mut self, addr: Addr, kind: AccessKind, write: bool, now: Cycle) -> Cycle {
        let start = now.max(self.next_accept);
        self.port_wait_cycles.add(start.since(now));
        self.next_accept = start.plus(1);

        // Merge into an in-flight refill if one exists.
        if let Some(ready) = self.mshrs.pending(addr, start) {
            self.stats.record(kind, false);
            if write {
                // The block will be resident when the refill lands; mark the
                // eventual line dirty by inserting now (tags only).
                self.fill(addr, true);
            }
            return ready.max(start.plus(self.hit_latency));
        }

        let hit = self.cache.touch(addr).is_some();
        self.stats.record(kind, hit);
        if hit {
            if write {
                self.cache.set_dirty(addr);
            }
            return start.plus(self.hit_latency);
        }

        // Miss: fetch from memory, then fill.
        match kind {
            AccessKind::CorrectLoad | AccessKind::CorrectStore => {
                self.stats.demand_misses_to_next_level.inc()
            }
            AccessKind::WrongPathLoad | AccessKind::WrongThreadLoad => {
                self.stats.wrong_misses_to_next_level.inc()
            }
            _ => {}
        }
        if self.trace.is_enabled()
            && matches!(
                kind,
                AccessKind::CorrectLoad
                    | AccessKind::CorrectStore
                    | AccessKind::WrongPathLoad
                    | AccessKind::WrongThreadLoad
            )
        {
            let base = addr.block_base(self.cache.geometry().block_bytes).0;
            self.trace.push(
                start.0,
                CacheEvent::MissToNext {
                    wrong: kind.is_wrong(),
                },
                base,
            );
        }
        let memory = &mut self.memory;
        let hit_latency = self.hit_latency;
        let ready = match self.mshrs.register(addr, start, || {
            memory.access(start.plus(hit_latency)).plus(1)
        }) {
            MshrOutcome::NewMiss(r) | MshrOutcome::Merged(r) => r,
            // MSHRs exhausted: model the stall as waiting out the oldest
            // refill plus a full memory access.
            MshrOutcome::Full => self.memory.access(start.plus(self.hit_latency)).plus(1),
        };
        self.fill(addr, write);
        ready
    }

    fn fill(&mut self, addr: Addr, dirty: bool) {
        let flags = LineFlags {
            dirty,
            ..LineFlags::DEMAND
        };
        if let Some(evicted) = self.cache.insert(addr, flags) {
            self.stats.evictions.inc();
            if evicted.flags.dirty {
                self.stats.writebacks.inc();
                // Write-back consumes memory bandwidth but nobody waits on it.
                let _ = self.memory.access(self.next_accept);
            }
        }
    }

    /// Does the L2 currently hold the block containing `addr`? (Tests.)
    pub fn contains(&self, addr: Addr) -> bool {
        self.cache.contains(addr)
    }

    /// Memory-side counters (requests, queueing).
    pub fn memory(&self) -> &MainMemory {
        &self.memory
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_l2() -> SharedL2 {
        SharedL2::new(L2Config {
            capacity_bytes: 4 * 1024,
            ways: 2,
            block_bytes: 128,
            hit_latency: 12,
            memory_latency: 188,
            memory_gap: 4,
            mshrs: 4,
        })
        .unwrap()
    }

    #[test]
    fn miss_costs_memory_latency_hit_is_cheap() {
        let mut l2 = small_l2();
        let a = Addr(0x1000);
        let t_miss = l2.access(a, AccessKind::CorrectLoad, false, Cycle(0));
        // hit_latency(12) + memory(188) + fill(1)
        assert_eq!(t_miss, Cycle(201));
        let t_hit = l2.access(a, AccessKind::CorrectLoad, false, Cycle(300));
        assert_eq!(t_hit, Cycle(312));
        assert_eq!(l2.stats.demand_misses.get(), 1);
        assert_eq!(l2.stats.demand_accesses.get(), 2);
    }

    #[test]
    fn concurrent_misses_to_same_block_merge() {
        let mut l2 = small_l2();
        let a = Addr(0x2000);
        let t1 = l2.access(a, AccessKind::CorrectLoad, false, Cycle(0));
        let t2 = l2.access(Addr(0x2008), AccessKind::CorrectLoad, false, Cycle(1));
        assert_eq!(t1, t2);
        assert_eq!(l2.memory().requests.get(), 1);
    }

    #[test]
    fn one_request_per_cycle_port() {
        let mut l2 = small_l2();
        // Two different blocks in the same cycle: the second starts a cycle
        // later and waits on memory bandwidth too.
        let t1 = l2.access(Addr(0x0000), AccessKind::CorrectLoad, false, Cycle(0));
        let t2 = l2.access(Addr(0x4000), AccessKind::CorrectLoad, false, Cycle(0));
        assert!(t2 > t1);
        assert!(l2.port_wait_cycles.get() >= 1);
    }

    #[test]
    fn writeback_allocates_dirty() {
        let mut l2 = small_l2();
        let a = Addr(0x3000);
        l2.access(a, AccessKind::CorrectStore, true, Cycle(0));
        assert!(l2.contains(a));
        // Force eviction of `a` by filling its set (2 ways).
        let sets = l2.geometry().sets;
        let stride = sets * l2.geometry().block_bytes;
        l2.access(
            Addr(a.0 + stride),
            AccessKind::CorrectLoad,
            false,
            Cycle(1000),
        );
        l2.access(
            Addr(a.0 + 2 * stride),
            AccessKind::CorrectLoad,
            false,
            Cycle(2000),
        );
        assert!(!l2.contains(a));
        assert_eq!(l2.stats.writebacks.get(), 1);
    }

    #[test]
    fn trace_records_memory_misses_when_enabled() {
        let mut l2 = small_l2();
        l2.trace.set_enabled(true);
        l2.access(Addr(0x1000), AccessKind::CorrectLoad, false, Cycle(0));
        // A hit produces no event.
        l2.access(Addr(0x1000), AccessKind::CorrectLoad, false, Cycle(300));
        l2.access(Addr(0x5000), AccessKind::WrongPathLoad, false, Cycle(600));
        let evs: Vec<_> = l2.trace.drain().collect();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0], (0, CacheEvent::MissToNext { wrong: false }, 0x1000));
        assert_eq!(evs[1].1, CacheEvent::MissToNext { wrong: true });
    }

    #[test]
    fn wrong_execution_misses_counted_separately() {
        let mut l2 = small_l2();
        l2.access(Addr(0x5000), AccessKind::WrongPathLoad, false, Cycle(0));
        assert_eq!(l2.stats.wrong_accesses.get(), 1);
        assert_eq!(l2.stats.wrong_misses_to_next_level.get(), 1);
        assert_eq!(l2.stats.demand_accesses.get(), 0);
    }
}
