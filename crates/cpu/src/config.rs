//! Core configuration.
//!
//! Table 3 of the paper scales these per-TU resources against the thread
//! count so total parallelism stays at 16 instructions/cycle; §5.2 fixes the
//! default study machine at 8 TUs of 8-issue cores.

use wec_isa::inst::FuClass;

use crate::bpred::BpredKind;

/// Sizes and latencies of one out-of-order core.
#[derive(Clone, Debug)]
pub struct CoreConfig {
    /// Instructions fetched, renamed, issued and committed per cycle.
    pub width: u32,
    /// Reorder-buffer entries.
    pub rob_size: usize,
    /// Load/store-queue entries (loads + stores resident in the ROB).
    pub lsq_size: usize,
    /// Functional-unit counts.
    pub int_alu: u32,
    pub int_mul: u32,
    pub fp_alu: u32,
    pub fp_mul: u32,
    /// Direction predictor kind (the paper uses bimodal; the §7 ablation
    /// varies it).
    pub bpred: BpredKind,
    /// Entries in the direction-predictor table.
    pub bimodal_entries: usize,
    /// Branch target buffer geometry (paper: 1024-entry, 4-way).
    pub btb_entries: usize,
    pub btb_ways: usize,
    /// Return-address-stack depth.
    pub ras_depth: usize,
    /// Continue executing ready loads from resolved-wrong branch paths
    /// (the paper's `wp` configurations).
    pub wrong_path_loads: bool,
    /// Capacity of the wrong-path load engine.
    pub wrong_path_queue: usize,
    /// Store-buffer entries drained to the cache after commit.
    pub store_buffer: usize,
    /// Keep the last N committed instructions per core for debugging
    /// (0 = disabled, the default; see `wec_cpu::trace`).
    pub commit_trace: usize,
}

impl Default for CoreConfig {
    /// The §5.2 default: an 8-issue core.
    fn default() -> Self {
        CoreConfig::with_width(8)
    }
}

impl CoreConfig {
    /// A core scaled as in §5.2 for an 8-issue TU, or proportionally for
    /// other widths (Table 3's scaling rule: ROB = 8×width capped per the
    /// paper's table, FUs = width or width/2).
    pub fn with_width(width: u32) -> Self {
        assert!(width >= 1);
        CoreConfig {
            width,
            // §5.2: 64-entry ROB and LSQ at 8-issue; Table 3 scales ROB with
            // 8×issue for the baseline sweep.
            rob_size: (8 * width as usize).max(8),
            lsq_size: (8 * width as usize).max(8),
            int_alu: width.max(1),
            int_mul: (width / 2).max(1),
            fp_alu: width.max(1),
            fp_mul: (width / 2).max(1),
            bpred: BpredKind::Bimodal,
            bimodal_entries: 2048,
            btb_entries: 1024,
            btb_ways: 4,
            ras_depth: 8,
            wrong_path_loads: false,
            wrong_path_queue: 16,
            store_buffer: 8,
            commit_trace: 0,
        }
    }

    /// Execution latency (cycles in the functional unit) per class.
    pub fn latency(&self, class: FuClass) -> u64 {
        match class {
            FuClass::IntAlu => 1,
            FuClass::IntMul => 3,
            FuClass::IntDiv => 20,
            FuClass::FpAlu => 2,
            FuClass::FpMul => 4,
            FuClass::FpDiv => 12,
            // Memory latency comes from the cache model; the FU slot models
            // address generation.
            FuClass::Mem => 1,
            FuClass::None => 1,
        }
    }

    /// How many units exist for a class (memory ports are owned by the cache
    /// model, so `Mem` here bounds AGEN slots at the core side).
    pub fn units(&self, class: FuClass) -> u32 {
        match class {
            FuClass::IntAlu => self.int_alu,
            FuClass::IntMul | FuClass::IntDiv => self.int_mul,
            FuClass::FpAlu => self.fp_alu,
            FuClass::FpMul | FuClass::FpDiv => self.fp_mul,
            FuClass::Mem => self.width.max(2),
            FuClass::None => u32::MAX,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_section_5_2() {
        let c = CoreConfig::default();
        assert_eq!(c.width, 8);
        assert_eq!(c.rob_size, 64);
        assert_eq!(c.lsq_size, 64);
        assert_eq!(c.int_alu, 8);
        assert_eq!(c.int_mul, 4);
        assert_eq!(c.fp_alu, 8);
        assert_eq!(c.fp_mul, 4);
        assert_eq!(c.btb_entries, 1024);
        assert_eq!(c.btb_ways, 4);
    }

    #[test]
    fn width_scaling_never_zeroes_resources() {
        let c = CoreConfig::with_width(1);
        assert_eq!(c.int_mul, 1);
        assert_eq!(c.rob_size, 8);
        let c = CoreConfig::with_width(16);
        assert_eq!(c.rob_size, 128);
        assert_eq!(c.int_alu, 16);
        assert_eq!(c.int_mul, 8);
    }

    #[test]
    fn latencies_ordered_sensibly() {
        let c = CoreConfig::default();
        use FuClass::*;
        assert!(c.latency(IntAlu) < c.latency(IntMul));
        assert!(c.latency(IntMul) < c.latency(IntDiv));
        assert!(c.latency(FpAlu) < c.latency(FpMul));
        assert!(c.latency(FpMul) < c.latency(FpDiv));
    }
}
