//! Machine configurations: the paper's eight processor configurations
//! (§4.3) and the Table 3 baseline scaling.

use wec_common::error::{SimError, SimResult};
use wec_cpu::config::CoreConfig;
use wec_mem::l2::L2Config;
use wec_telemetry::TelemetryConfig;

use crate::dpath::{DataPathConfig, SideKind};

/// The eight processor configurations evaluated in the paper (§4.3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ProcPreset {
    /// Baseline superthreaded processor.
    Orig,
    /// `orig` + victim cache beside each L1D.
    Vc,
    /// Wrong-path execution (resolved-wrong branch loads keep issuing).
    Wp,
    /// Wrong-thread execution (aborted threads keep running).
    Wth,
    /// Both wrong-execution modes.
    WthWp,
    /// Both + victim cache.
    WthWpVc,
    /// Both + the Wrong Execution Cache — the paper's proposal.
    WthWpWec,
    /// Tagged next-line prefetching with a prefetch buffer, no wrong
    /// execution (the conventional-prefetching comparator).
    Nlp,
}

impl ProcPreset {
    pub const ALL: [ProcPreset; 8] = [
        ProcPreset::Orig,
        ProcPreset::Vc,
        ProcPreset::Wp,
        ProcPreset::Wth,
        ProcPreset::WthWp,
        ProcPreset::WthWpVc,
        ProcPreset::WthWpWec,
        ProcPreset::Nlp,
    ];

    /// The paper's configuration name.
    pub fn name(self) -> &'static str {
        match self {
            ProcPreset::Orig => "orig",
            ProcPreset::Vc => "vc",
            ProcPreset::Wp => "wp",
            ProcPreset::Wth => "wth",
            ProcPreset::WthWp => "wth-wp",
            ProcPreset::WthWpVc => "wth-wp-vc",
            ProcPreset::WthWpWec => "wth-wp-wec",
            ProcPreset::Nlp => "nlp",
        }
    }

    /// Which side structure the preset places beside each L1D.
    pub fn side(self) -> SideKind {
        match self {
            ProcPreset::Orig | ProcPreset::Wp | ProcPreset::Wth | ProcPreset::WthWp => {
                SideKind::None
            }
            ProcPreset::Vc | ProcPreset::WthWpVc => SideKind::Victim,
            ProcPreset::WthWpWec => SideKind::Wec,
            ProcPreset::Nlp => SideKind::PrefetchBuffer,
        }
    }

    pub fn wrong_path(self) -> bool {
        matches!(
            self,
            ProcPreset::Wp | ProcPreset::WthWp | ProcPreset::WthWpVc | ProcPreset::WthWpWec
        )
    }

    pub fn wrong_thread(self) -> bool {
        matches!(
            self,
            ProcPreset::Wth | ProcPreset::WthWp | ProcPreset::WthWpVc | ProcPreset::WthWpWec
        )
    }

    /// The §5.2 default machine for this preset: `n_tus` thread units of
    /// 8-issue cores, 8 KB direct-mapped L1D + 8-entry side structure.
    pub fn machine(self, n_tus: usize) -> MachineConfig {
        let mut cfg = MachineConfig::paper_default(n_tus);
        cfg.apply_preset(self);
        cfg
    }
}

/// Full configuration of the superthreaded machine.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    pub preset: ProcPreset,
    pub n_tus: usize,
    pub core: CoreConfig,
    pub l1d: DataPathConfig,
    pub l1i: DataPathConfig,
    pub l2: L2Config,
    /// Mark aborted successor threads wrong and let them run (§3.1.2).
    pub wrong_thread: bool,
    /// Base cost of a fork (paper: 4 cycles)…
    pub fork_delay: u64,
    /// …plus per forwarded value (paper: 2 cycles).
    pub fork_per_value: u64,
    /// Ring latency for announcements, releases and TSAG_DONE flags.
    pub ring_latency: u64,
    /// Safety net: error out if the program has not halted by then.
    pub max_cycles: u64,
    /// Record the scheduler event log (thread lifecycle timeline; see
    /// `wec_core::events`).
    pub event_log: bool,
    /// Telemetry instruments (event trace, interval sampler, histograms,
    /// Perfetto export).  All off by default; when off, metrics are
    /// byte-identical to a run without telemetry.
    pub telemetry: TelemetryConfig,
    /// Speculation attribution ledger (`wec_telemetry::attr`): per-PC /
    /// per-set WEC lifecycle tracking on every L1D.  Purely observational —
    /// metrics and goldens are byte-identical with it on or off.
    pub attribution: bool,
}

impl MachineConfig {
    /// The §5.2 default machine (preset `orig` until changed).
    pub fn paper_default(n_tus: usize) -> Self {
        assert!((1..=64).contains(&n_tus));
        MachineConfig {
            preset: ProcPreset::Orig,
            n_tus,
            core: CoreConfig::default(),
            l1d: DataPathConfig::paper_default(SideKind::None),
            l1i: DataPathConfig::paper_icache(),
            l2: L2Config::default(),
            wrong_thread: false,
            fork_delay: 4,
            fork_per_value: 2,
            ring_latency: 2,
            max_cycles: 2_000_000_000,
            event_log: false,
            telemetry: TelemetryConfig::default(),
            attribution: false,
        }
    }

    /// Re-point this machine at a preset (side structure + wrong execution
    /// switches), keeping sizes.
    pub fn apply_preset(&mut self, preset: ProcPreset) {
        self.preset = preset;
        self.l1d.side = preset.side();
        self.core.wrong_path_loads = preset.wrong_path();
        self.wrong_thread = preset.wrong_thread();
    }

    /// A Table 3 baseline machine: `n_tus` × (16/`n_tus`)-issue cores with
    /// a 4-way L1D sized so the total L1D capacity stays 32 KB.  Valid for
    /// `n_tus` ∈ {1, 2, 4, 8, 16}; `single_issue_1tu` (the Figure 8
    /// baseline) is the 1 TU × 1-issue point.
    pub fn table3(n_tus: usize) -> SimResult<Self> {
        if ![1, 2, 4, 8, 16].contains(&n_tus) {
            return Err(SimError::Config(format!(
                "table 3 defines 1/2/4/8/16 TUs, not {n_tus}"
            )));
        }
        let issue = (16 / n_tus) as u32;
        let mut cfg = MachineConfig::paper_default(n_tus);
        cfg.core = CoreConfig::with_width(issue);
        cfg.l1d = DataPathConfig {
            capacity_bytes: (32 * 1024 / n_tus) as u64,
            ways: 4,
            ..DataPathConfig::paper_default(SideKind::None)
        };
        Ok(cfg)
    }

    /// The Figure 8 baseline: a single-thread, single-issue processor with
    /// the Table 3 smallest cache (2 KB, 4-way).
    pub fn single_issue_1tu() -> Self {
        let mut cfg = MachineConfig::paper_default(1);
        cfg.core = CoreConfig::with_width(1);
        cfg.l1d = DataPathConfig {
            capacity_bytes: 2 * 1024,
            ways: 4,
            ..DataPathConfig::paper_default(SideKind::None)
        };
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_switches() {
        assert_eq!(ProcPreset::Orig.side(), SideKind::None);
        assert_eq!(ProcPreset::WthWpWec.side(), SideKind::Wec);
        assert_eq!(ProcPreset::Nlp.side(), SideKind::PrefetchBuffer);
        assert!(ProcPreset::WthWpWec.wrong_path() && ProcPreset::WthWpWec.wrong_thread());
        assert!(ProcPreset::Wp.wrong_path() && !ProcPreset::Wp.wrong_thread());
        assert!(!ProcPreset::Nlp.wrong_path() && !ProcPreset::Nlp.wrong_thread());
        assert!(!ProcPreset::Vc.wrong_path());
    }

    #[test]
    fn every_preset_has_a_distinct_name() {
        let mut names: Vec<&str> = ProcPreset::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn machine_preset_applies_switches() {
        let cfg = ProcPreset::WthWpWec.machine(8);
        assert_eq!(cfg.n_tus, 8);
        assert_eq!(cfg.l1d.side, SideKind::Wec);
        assert!(cfg.core.wrong_path_loads);
        assert!(cfg.wrong_thread);
        assert_eq!(cfg.l1d.capacity_bytes, 8 * 1024);
        assert_eq!(cfg.l1d.ways, 1);
        assert_eq!(cfg.fork_delay, 4);
    }

    #[test]
    fn table3_scales_issue_and_cache() {
        for (tus, issue, l1k) in [(1, 16, 32), (2, 8, 16), (4, 4, 8), (8, 2, 4), (16, 1, 2)] {
            let cfg = MachineConfig::table3(tus).unwrap();
            assert_eq!(cfg.core.width, issue, "tus={tus}");
            assert_eq!(cfg.l1d.capacity_bytes, l1k * 1024);
            assert_eq!(cfg.l1d.ways, 4);
        }
        assert!(MachineConfig::table3(3).is_err());
    }

    #[test]
    fn figure8_baseline_is_minimal() {
        let cfg = MachineConfig::single_issue_1tu();
        assert_eq!(cfg.n_tus, 1);
        assert_eq!(cfg.core.width, 1);
        assert_eq!(cfg.l1d.capacity_bytes, 2 * 1024);
    }
}
