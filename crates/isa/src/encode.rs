//! Fixed-width 64-bit binary encoding of WISA-64.
//!
//! The paper's flow (Figure 7) assembles parallelized sources into a binary
//! that the simulator loads; we keep the same shape by giving every
//! instruction one 64-bit word.  Layout (bit 63 = MSB):
//!
//! ```text
//! [63:56] opcode   [55:48] field a   [47:40] field b   [39:32] field c
//! [31:0]  32-bit immediate / branch target
//! ```
//!
//! Exceptions: `li` packs a 48-bit immediate in bits 47:0; `fork` packs the
//! 24-bit body target in bits 55:32 and the register mask in bits 31:0.

use crate::inst::{AluOp, BranchCond, FCmpOp, FpuOp, Inst, LoadKind, StoreKind};
use crate::reg::{FReg, Reg, NUM_FREGS, NUM_IREGS};
use crate::semantics::sext;
use wec_common::error::{SimError, SimResult};

const OP_NOP: u8 = 0x00;
const OP_HALT: u8 = 0x01;
const OP_ALU: u8 = 0x10; // +AluOp index (13 ops)
const OP_ALUI: u8 = 0x20; // +AluOp index
const OP_LI: u8 = 0x2f;
const OP_FPU: u8 = 0x30; // +FpuOp index (4 ops)
const OP_FCMP: u8 = 0x38; // +FCmpOp index (3 ops)
const OP_CVTIF: u8 = 0x3c;
const OP_CVTFI: u8 = 0x3d;
const OP_LD: u8 = 0x40;
const OP_LW: u8 = 0x41;
const OP_LBU: u8 = 0x42;
const OP_FLD: u8 = 0x43;
const OP_SD: u8 = 0x48;
const OP_SW: u8 = 0x49;
const OP_SB: u8 = 0x4a;
const OP_FSD: u8 = 0x4b;
const OP_BRANCH: u8 = 0x50; // +BranchCond index (6 conds)
const OP_J: u8 = 0x58;
const OP_JAL: u8 = 0x59;
const OP_JR: u8 = 0x5a;
const OP_BEGIN: u8 = 0x60;
const OP_FORK: u8 = 0x61;
const OP_ABORT: u8 = 0x62;
const OP_TSANN: u8 = 0x63;
const OP_TSAGDONE: u8 = 0x64;
const OP_THREADEND: u8 = 0x65;

#[inline]
fn pack(op: u8, a: u8, b: u8, c: u8, imm: u32) -> u64 {
    (op as u64) << 56 | (a as u64) << 48 | (b as u64) << 40 | (c as u64) << 32 | imm as u64
}

/// Encode an instruction into its 64-bit word.
pub fn encode(inst: &Inst) -> u64 {
    match *inst {
        Inst::Nop => pack(OP_NOP, 0, 0, 0, 0),
        Inst::Halt => pack(OP_HALT, 0, 0, 0, 0),
        Inst::Alu { op, rd, rs1, rs2 } => pack(OP_ALU + alu_idx(op), rd.0, rs1.0, rs2.0, 0),
        Inst::AluImm { op, rd, rs1, imm } => {
            pack(OP_ALUI + alu_idx(op), rd.0, rs1.0, 0, imm as u32)
        }
        Inst::Li { rd, imm } => {
            (OP_LI as u64) << 56 | (rd.0 as u64) << 48 | (imm as u64 & 0xffff_ffff_ffff)
        }
        Inst::Fpu { op, fd, fs1, fs2 } => pack(OP_FPU + fpu_idx(op), fd.0, fs1.0, fs2.0, 0),
        Inst::FCmp { op, rd, fs1, fs2 } => pack(OP_FCMP + fcmp_idx(op), rd.0, fs1.0, fs2.0, 0),
        Inst::CvtIF { fd, rs } => pack(OP_CVTIF, fd.0, rs.0, 0, 0),
        Inst::CvtFI { rd, fs } => pack(OP_CVTFI, rd.0, fs.0, 0, 0),
        Inst::Load {
            kind,
            rd,
            base,
            off,
        } => {
            let op = match kind {
                LoadKind::D => OP_LD,
                LoadKind::W => OP_LW,
                LoadKind::B => OP_LBU,
            };
            pack(op, rd.0, base.0, 0, off as u32)
        }
        Inst::FLoad { fd, base, off } => pack(OP_FLD, fd.0, base.0, 0, off as u32),
        Inst::Store {
            kind,
            rs,
            base,
            off,
        } => {
            let op = match kind {
                StoreKind::D => OP_SD,
                StoreKind::W => OP_SW,
                StoreKind::B => OP_SB,
            };
            pack(op, rs.0, base.0, 0, off as u32)
        }
        Inst::FStore { fs, base, off } => pack(OP_FSD, fs.0, base.0, 0, off as u32),
        Inst::Branch {
            cond,
            rs1,
            rs2,
            target,
        } => pack(OP_BRANCH + cond_idx(cond), rs1.0, rs2.0, 0, target),
        Inst::Jump { target } => pack(OP_J, 0, 0, 0, target),
        Inst::Jal { rd, target } => pack(OP_JAL, rd.0, 0, 0, target),
        Inst::Jr { rs } => pack(OP_JR, rs.0, 0, 0, 0),
        Inst::Begin { region } => pack(OP_BEGIN, 0, 0, 0, region as u32),
        Inst::Fork { mask, body } => {
            debug_assert!(body < (1 << 24), "fork body target exceeds 24 bits");
            (OP_FORK as u64) << 56 | (body as u64 & 0xff_ffff) << 32 | mask as u64
        }
        Inst::Abort { seq } => pack(OP_ABORT, 0, 0, 0, seq),
        Inst::TsAnnounce { base, off } => pack(OP_TSANN, 0, base.0, 0, off as u32),
        Inst::TsagDone => pack(OP_TSAGDONE, 0, 0, 0, 0),
        Inst::ThreadEnd => pack(OP_THREADEND, 0, 0, 0, 0),
    }
}

fn alu_idx(op: AluOp) -> u8 {
    AluOp::ALL.iter().position(|&o| o == op).unwrap() as u8
}

fn fpu_idx(op: FpuOp) -> u8 {
    FpuOp::ALL.iter().position(|&o| o == op).unwrap() as u8
}

fn fcmp_idx(op: FCmpOp) -> u8 {
    FCmpOp::ALL.iter().position(|&o| o == op).unwrap() as u8
}

fn cond_idx(c: BranchCond) -> u8 {
    BranchCond::ALL.iter().position(|&o| o == c).unwrap() as u8
}

/// Decode a 64-bit word back into an instruction.
pub fn decode(word: u64) -> SimResult<Inst> {
    let op = (word >> 56) as u8;
    let a = (word >> 48) as u8;
    let b = (word >> 40) as u8;
    let c = (word >> 32) as u8;
    let imm = word as u32;
    let bad = || SimError::BadEncoding { word };
    let ireg = |n: u8| -> SimResult<Reg> {
        if (n as usize) < NUM_IREGS {
            Ok(Reg(n))
        } else {
            Err(bad())
        }
    };
    let freg = |n: u8| -> SimResult<FReg> {
        if (n as usize) < NUM_FREGS {
            Ok(FReg(n))
        } else {
            Err(bad())
        }
    };

    Ok(match op {
        OP_NOP => Inst::Nop,
        OP_HALT => Inst::Halt,
        _ if (OP_ALU..OP_ALU + 13).contains(&op) => Inst::Alu {
            op: AluOp::ALL[(op - OP_ALU) as usize],
            rd: ireg(a)?,
            rs1: ireg(b)?,
            rs2: ireg(c)?,
        },
        _ if (OP_ALUI..OP_ALUI + 13).contains(&op) => Inst::AluImm {
            op: AluOp::ALL[(op - OP_ALUI) as usize],
            rd: ireg(a)?,
            rs1: ireg(b)?,
            imm: imm as i32,
        },
        OP_LI => Inst::Li {
            rd: ireg(a)?,
            imm: sext(word & 0xffff_ffff_ffff, 48) as i64,
        },
        _ if (OP_FPU..OP_FPU + 4).contains(&op) => Inst::Fpu {
            op: FpuOp::ALL[(op - OP_FPU) as usize],
            fd: freg(a)?,
            fs1: freg(b)?,
            fs2: freg(c)?,
        },
        _ if (OP_FCMP..OP_FCMP + 3).contains(&op) => Inst::FCmp {
            op: FCmpOp::ALL[(op - OP_FCMP) as usize],
            rd: ireg(a)?,
            fs1: freg(b)?,
            fs2: freg(c)?,
        },
        OP_CVTIF => Inst::CvtIF {
            fd: freg(a)?,
            rs: ireg(b)?,
        },
        OP_CVTFI => Inst::CvtFI {
            rd: ireg(a)?,
            fs: freg(b)?,
        },
        OP_LD | OP_LW | OP_LBU => Inst::Load {
            kind: match op {
                OP_LD => LoadKind::D,
                OP_LW => LoadKind::W,
                _ => LoadKind::B,
            },
            rd: ireg(a)?,
            base: ireg(b)?,
            off: imm as i32,
        },
        OP_FLD => Inst::FLoad {
            fd: freg(a)?,
            base: ireg(b)?,
            off: imm as i32,
        },
        OP_SD | OP_SW | OP_SB => Inst::Store {
            kind: match op {
                OP_SD => StoreKind::D,
                OP_SW => StoreKind::W,
                _ => StoreKind::B,
            },
            rs: ireg(a)?,
            base: ireg(b)?,
            off: imm as i32,
        },
        OP_FSD => Inst::FStore {
            fs: freg(a)?,
            base: ireg(b)?,
            off: imm as i32,
        },
        _ if (OP_BRANCH..OP_BRANCH + 6).contains(&op) => Inst::Branch {
            cond: BranchCond::ALL[(op - OP_BRANCH) as usize],
            rs1: ireg(a)?,
            rs2: ireg(b)?,
            target: imm,
        },
        OP_J => Inst::Jump { target: imm },
        OP_JAL => Inst::Jal {
            rd: ireg(a)?,
            target: imm,
        },
        OP_JR => Inst::Jr { rs: ireg(a)? },
        OP_BEGIN => Inst::Begin { region: imm as u16 },
        OP_FORK => Inst::Fork {
            mask: imm,
            body: ((word >> 32) & 0xff_ffff) as u32,
        },
        OP_ABORT => Inst::Abort { seq: imm },
        OP_TSANN => Inst::TsAnnounce {
            base: ireg(b)?,
            off: imm as i32,
        },
        OP_TSAGDONE => Inst::TsagDone,
        OP_THREADEND => Inst::ThreadEnd,
        _ => return Err(bad()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(i: Inst) {
        let w = encode(&i);
        let back = decode(w).unwrap_or_else(|e| panic!("{e} for {i:?}"));
        assert_eq!(back, i, "word 0x{w:016x}");
    }

    #[test]
    fn roundtrip_representatives() {
        roundtrip(Inst::Nop);
        roundtrip(Inst::Halt);
        for op in AluOp::ALL {
            roundtrip(Inst::Alu {
                op,
                rd: Reg(1),
                rs1: Reg(2),
                rs2: Reg(31),
            });
            roundtrip(Inst::AluImm {
                op,
                rd: Reg(3),
                rs1: Reg(4),
                imm: -12345,
            });
        }
        roundtrip(Inst::Li {
            rd: Reg(9),
            imm: -1,
        });
        roundtrip(Inst::Li {
            rd: Reg(9),
            imm: (1i64 << 47) - 1,
        });
        roundtrip(Inst::Li {
            rd: Reg(9),
            imm: -(1i64 << 47),
        });
        for op in FpuOp::ALL {
            roundtrip(Inst::Fpu {
                op,
                fd: FReg(0),
                fs1: FReg(15),
                fs2: FReg(31),
            });
        }
        for op in FCmpOp::ALL {
            roundtrip(Inst::FCmp {
                op,
                rd: Reg(5),
                fs1: FReg(1),
                fs2: FReg(2),
            });
        }
        roundtrip(Inst::CvtIF {
            fd: FReg(3),
            rs: Reg(4),
        });
        roundtrip(Inst::CvtFI {
            rd: Reg(4),
            fs: FReg(3),
        });
        for kind in [LoadKind::D, LoadKind::W, LoadKind::B] {
            roundtrip(Inst::Load {
                kind,
                rd: Reg(7),
                base: Reg(8),
                off: -64,
            });
        }
        for kind in [StoreKind::D, StoreKind::W, StoreKind::B] {
            roundtrip(Inst::Store {
                kind,
                rs: Reg(7),
                base: Reg(8),
                off: 1 << 20,
            });
        }
        roundtrip(Inst::FLoad {
            fd: FReg(2),
            base: Reg(3),
            off: 8,
        });
        roundtrip(Inst::FStore {
            fs: FReg(2),
            base: Reg(3),
            off: -8,
        });
        for cond in BranchCond::ALL {
            roundtrip(Inst::Branch {
                cond,
                rs1: Reg(1),
                rs2: Reg(2),
                target: 0xdead,
            });
        }
        roundtrip(Inst::Jump { target: 77 });
        roundtrip(Inst::Jal {
            rd: Reg(31),
            target: 99,
        });
        roundtrip(Inst::Jr { rs: Reg(31) });
        roundtrip(Inst::Begin { region: 65535 });
        roundtrip(Inst::Fork {
            mask: 0xffff_ffff,
            body: (1 << 24) - 1,
        });
        roundtrip(Inst::Abort { seq: 123 });
        roundtrip(Inst::TsAnnounce {
            base: Reg(6),
            off: 16,
        });
        roundtrip(Inst::TsagDone);
        roundtrip(Inst::ThreadEnd);
    }

    #[test]
    fn bad_opcode_rejected() {
        assert!(decode(0xff00_0000_0000_0000).is_err());
        // Register field out of range.
        let w = pack(OP_ALU, 40, 0, 0, 0);
        assert!(decode(w).is_err());
    }

    #[test]
    fn li_negative_immediates_sign_extend() {
        let i = Inst::Li {
            rd: Reg(1),
            imm: -42,
        };
        match decode(encode(&i)).unwrap() {
            Inst::Li { imm, .. } => assert_eq!(imm, -42),
            other => panic!("{other:?}"),
        }
    }
}
