//! Property tests: the `to_kv`/`from_kv` metrics serialization (the golden
//! file and result-cache format) round-trips exactly and rejects malformed
//! input — in particular duplicated keys, which must be a parse error
//! rather than a silent last-writer-wins.

use proptest::prelude::*;
use wec_core::metrics::{L1dAggregate, MachineMetrics};

fn arb_metrics() -> impl Strategy<Value = MachineMetrics> {
    // One draw per field (24 of them); any u64 is legal everywhere.
    proptest::collection::vec(any::<u64>(), 24).prop_map(|v| MachineMetrics {
        cycles: v[0],
        region_cycles: v[1],
        sequential_instructions: v[2],
        parallel_instructions: v[3],
        wrong_instructions: v[4],
        threads_started: v[5],
        threads_marked_wrong: v[6],
        threads_killed: v[7],
        forks: v[8],
        regions: v[9],
        l1d: L1dAggregate {
            demand_accesses: v[10],
            demand_misses: v[11],
            misses_to_next_level: v[12],
            wrong_accesses: v[13],
            side_hits: v[14],
            useful_wrong_fetches: v[15],
            useful_prefetches: v[16],
            prefetches_issued: v[17],
        },
        l2_demand_misses: v[18],
        cond_branches: v[19],
        mispredicted_branches: v[20],
        wrong_loads_dropped: v[21],
        wb_words: v[22],
        checksum: v[23],
    })
}

proptest! {
    /// Every serialized metrics block parses back to the same value.
    #[test]
    fn kv_roundtrips_exactly(m in arb_metrics()) {
        let text = m.to_kv();
        let back = MachineMetrics::from_kv(&text).unwrap();
        prop_assert_eq!(back, m);
        // And the re-serialization is byte-identical (canonical form).
        prop_assert_eq!(back.to_kv(), text);
    }

    /// Repeating any one line makes the parse fail with a duplicate-key
    /// error, regardless of whether the repeated value agrees.
    #[test]
    fn kv_rejects_any_duplicated_key(m in arb_metrics(), idx in 0usize..24, v in any::<u64>()) {
        let text = m.to_kv();
        let line = text.lines().nth(idx).unwrap();
        let key = line.split_once(' ').unwrap().0;
        let dup = format!("{text}{key} {v}\n");
        let err = MachineMetrics::from_kv(&dup).unwrap_err();
        prop_assert!(err.contains("duplicate"), "unexpected error: {err}");
    }

    /// Deleting any one line makes the parse fail (no silent defaulting).
    #[test]
    fn kv_rejects_any_missing_key(m in arb_metrics(), idx in 0usize..24) {
        let text = m.to_kv();
        let pruned: String = text
            .lines()
            .enumerate()
            .filter(|&(i, _)| i != idx)
            .map(|(_, l)| format!("{l}\n"))
            .collect();
        prop_assert!(MachineMetrics::from_kv(&pruned).is_err());
    }

    /// Comments and blank lines are ignored wherever they appear.
    #[test]
    fn kv_ignores_comments_and_blanks(m in arb_metrics(), idx in 0usize..24) {
        let text = m.to_kv();
        let commented: String = text
            .lines()
            .enumerate()
            .map(|(i, l)| {
                if i == idx {
                    format!("# interleaved comment\n\n{l}\n")
                } else {
                    format!("{l}\n")
                }
            })
            .collect();
        prop_assert_eq!(MachineMetrics::from_kv(&commented).unwrap(), m);
    }
}
