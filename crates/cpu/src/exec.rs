//! Functional execution of renamed instructions.
//!
//! Operand gathering maps each instruction onto at most two source slots
//! (integer or floating-point, in a canonical order) so the ROB can treat
//! all dataflow uniformly as 64-bit values; [`execute`] then computes the
//! result from those values.

use wec_common::ids::Addr;
use wec_isa::inst::Inst;
use wec_isa::reg::{FReg, Reg};
use wec_isa::semantics::{cvt_fi, cvt_if, eval_alu, eval_branch, eval_fcmp, eval_fpu};

/// A source register slot, integer or floating-point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SrcReg {
    I(Reg),
    F(FReg),
}

/// The (up to two) source slots of an instruction, in canonical order.
///
/// Canonical order matters to [`execute`]: for stores the *data* register is
/// slot 0 and the base register slot 1; for loads the base is slot 0.
pub fn gather_sources(inst: &Inst) -> [Option<SrcReg>; 2] {
    use SrcReg::{F, I};
    match *inst {
        Inst::Alu { rs1, rs2, .. } => [Some(I(rs1)), Some(I(rs2))],
        Inst::AluImm { rs1, .. } => [Some(I(rs1)), None],
        Inst::Fpu { fs1, fs2, .. } | Inst::FCmp { fs1, fs2, .. } => [Some(F(fs1)), Some(F(fs2))],
        Inst::CvtIF { rs, .. } => [Some(I(rs)), None],
        Inst::CvtFI { fs, .. } => [Some(F(fs)), None],
        Inst::Load { base, .. } | Inst::FLoad { base, .. } => [Some(I(base)), None],
        Inst::Store { rs, base, .. } => [Some(I(rs)), Some(I(base))],
        Inst::FStore { fs, base, .. } => [Some(F(fs)), Some(I(base))],
        Inst::Branch { rs1, rs2, .. } => [Some(I(rs1)), Some(I(rs2))],
        Inst::Jr { rs } => [Some(I(rs)), None],
        Inst::TsAnnounce { base, .. } => [Some(I(base)), None],
        _ => [None, None],
    }
}

/// Result of functionally executing an instruction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ExecResult {
    /// A register result (f64 results as bit patterns).
    Value(u64),
    /// A resolved conditional branch.
    Branch { taken: bool, target: u32 },
    /// A resolved indirect jump target (`jr`).
    IndirectTarget(u32),
    /// A load's effective address.
    LoadAddr(Addr),
    /// A store's effective address and data value.
    StoreReady { addr: Addr, data: u64 },
    /// A target-store announcement address.
    AnnounceAddr(Addr),
    /// No value (markers, jumps handled at fetch).
    None,
}

/// Execute `inst` with resolved source-slot values `v0`, `v1` at `pc`.
pub fn execute(inst: &Inst, v0: u64, v1: u64, pc: u32) -> ExecResult {
    match *inst {
        Inst::Alu { op, .. } => ExecResult::Value(eval_alu(op, v0, v1)),
        Inst::AluImm { op, imm, .. } => ExecResult::Value(eval_alu(op, v0, imm as i64 as u64)),
        Inst::Li { imm, .. } => ExecResult::Value(imm as u64),
        Inst::Fpu { op, .. } => {
            ExecResult::Value(eval_fpu(op, f64::from_bits(v0), f64::from_bits(v1)).to_bits())
        }
        Inst::FCmp { op, .. } => {
            ExecResult::Value(eval_fcmp(op, f64::from_bits(v0), f64::from_bits(v1)))
        }
        Inst::CvtIF { .. } => ExecResult::Value(cvt_if(v0).to_bits()),
        Inst::CvtFI { .. } => ExecResult::Value(cvt_fi(f64::from_bits(v0))),
        Inst::Load { off, .. } | Inst::FLoad { off, .. } => {
            ExecResult::LoadAddr(Addr(v0.wrapping_add(off as i64 as u64)))
        }
        Inst::Store { off, .. } | Inst::FStore { off, .. } => ExecResult::StoreReady {
            addr: Addr(v1.wrapping_add(off as i64 as u64)),
            data: v0,
        },
        Inst::Branch { cond, target, .. } => ExecResult::Branch {
            taken: eval_branch(cond, v0, v1),
            target,
        },
        Inst::Jr { .. } => {
            // The register holds an instruction index (jal wrote pc+1).
            ExecResult::IndirectTarget(v0 as u32)
        }
        Inst::Jal { .. } => ExecResult::Value(pc as u64 + 1),
        Inst::TsAnnounce { off, .. } => {
            ExecResult::AnnounceAddr(Addr(v0.wrapping_add(off as i64 as u64)))
        }
        Inst::Jump { .. }
        | Inst::Nop
        | Inst::Halt
        | Inst::Begin { .. }
        | Inst::Fork { .. }
        | Inst::Abort { .. }
        | Inst::TsagDone
        | Inst::ThreadEnd => ExecResult::None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wec_isa::inst::{AluOp, BranchCond, FpuOp, LoadKind, StoreKind};

    #[test]
    fn alu_imm_sign_extends() {
        let i = Inst::AluImm {
            op: AluOp::Add,
            rd: Reg(1),
            rs1: Reg(2),
            imm: -1,
        };
        assert_eq!(execute(&i, 10, 0, 0), ExecResult::Value(9));
    }

    #[test]
    fn fp_flows_through_bits() {
        let i = Inst::Fpu {
            op: FpuOp::Mul,
            fd: FReg(0),
            fs1: FReg(1),
            fs2: FReg(2),
        };
        let r = execute(&i, 3.0f64.to_bits(), 2.0f64.to_bits(), 0);
        assert_eq!(r, ExecResult::Value(6.0f64.to_bits()));
    }

    #[test]
    fn load_address_generation() {
        let i = Inst::Load {
            kind: LoadKind::D,
            rd: Reg(1),
            base: Reg(2),
            off: -8,
        };
        assert_eq!(
            execute(&i, 0x1010, 0, 0),
            ExecResult::LoadAddr(Addr(0x1008))
        );
        assert_eq!(gather_sources(&i), [Some(SrcReg::I(Reg(2))), None]);
    }

    #[test]
    fn store_slots_are_data_then_base() {
        let i = Inst::Store {
            kind: StoreKind::D,
            rs: Reg(3),
            base: Reg(4),
            off: 16,
        };
        assert_eq!(
            gather_sources(&i),
            [Some(SrcReg::I(Reg(3))), Some(SrcReg::I(Reg(4)))]
        );
        assert_eq!(
            execute(&i, 99, 0x2000, 0),
            ExecResult::StoreReady {
                addr: Addr(0x2010),
                data: 99
            }
        );
    }

    #[test]
    fn fstore_mixes_fp_data_and_int_base() {
        let i = Inst::FStore {
            fs: FReg(1),
            base: Reg(2),
            off: 0,
        };
        assert_eq!(
            gather_sources(&i),
            [Some(SrcReg::F(FReg(1))), Some(SrcReg::I(Reg(2)))]
        );
    }

    #[test]
    fn branch_resolution() {
        let i = Inst::Branch {
            cond: BranchCond::Lt,
            rs1: Reg(1),
            rs2: Reg(2),
            target: 42,
        };
        assert_eq!(
            execute(&i, 1, 2, 0),
            ExecResult::Branch {
                taken: true,
                target: 42
            }
        );
        assert_eq!(
            execute(&i, 2, 2, 0),
            ExecResult::Branch {
                taken: false,
                target: 42
            }
        );
    }

    #[test]
    fn jal_writes_return_index() {
        let i = Inst::Jal {
            rd: Reg(31),
            target: 5,
        };
        assert_eq!(execute(&i, 0, 0, 17), ExecResult::Value(18));
    }

    #[test]
    fn jr_resolves_register_target() {
        let i = Inst::Jr { rs: Reg(31) };
        assert_eq!(execute(&i, 18, 0, 0), ExecResult::IndirectTarget(18));
    }

    #[test]
    fn markers_produce_nothing() {
        assert_eq!(execute(&Inst::ThreadEnd, 0, 0, 0), ExecResult::None);
        assert_eq!(execute(&Inst::Nop, 0, 0, 0), ExecResult::None);
    }
}
