//! The speculation predictor: which jobs will this client ask for next?
//!
//! The 48-point replay sweep (`wec-bench`'s `sweep_keys()`) walks two
//! presets × eight side-structure sizes × three L1 associativities, and
//! real clients walk it in order — so the strongest signal is *adjacency
//! on the sweep axes*, the serving-tier analog of the paper's
//! next-line-prefetch locality.  On top of that static neighborhood the
//! predictor keeps a small per-client history (stride continuation: a
//! client stepping `side 8 → 16` is probably headed for 24) and a global
//! first-order transition table (key → observed successors), so repeated
//! sweeps are learned exactly.
//!
//! Everything is deterministic: no RNG, no HashMap iteration order in
//! scoring (candidates come from fixed-order rules and insertion-ordered
//! successor lists), and identity is [`JobSpec::dedup_key`] throughout.
//! Memory is bounded: at most [`MAX_CLIENTS`] client histories and
//! [`MAX_TRANSITIONS`] transition rows, evicted oldest-first.

use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

use wec_core::config::ProcPreset;
use wec_workloads::Scale;

use crate::job::{JobKind, JobSpec};
use crate::lock;

/// The replay sweep's side-structure axis, in walk order.
pub const SIDE_AXIS: [u8; 8] = [2, 4, 8, 16, 24, 32, 64, 128];
/// The replay sweep's L1-associativity axis.
pub const WAYS_AXIS: [u8; 3] = [1, 2, 4];

pub const MAX_CLIENTS: usize = 256;
pub const MAX_TRANSITIONS: usize = 512;
/// Successors remembered per transition row.
const MAX_SUCCESSORS: usize = 8;

struct ClientHist {
    /// The client's previous submission (for stride detection).
    prev: Option<JobSpec>,
    /// The client's latest submission.
    last: Option<JobSpec>,
}

struct Tables {
    clients: HashMap<String, ClientHist>,
    client_order: VecDeque<String>,
    /// dedup_key → successors observed after it, insertion-ordered.
    transitions: HashMap<String, Vec<(JobSpec, u32)>>,
    transition_order: VecDeque<String>,
}

/// Deterministic per-client / global-transition next-job predictor.
pub struct Predictor {
    fanout: usize,
    tables: Mutex<Tables>,
}

fn axis_idx(axis: &[u8], v: u8) -> Option<usize> {
    axis.iter().position(|&a| a == v)
}

/// The sweep's preset pair: each member predicts the other.
fn sibling_preset(p: ProcPreset) -> Option<ProcPreset> {
    match p {
        ProcPreset::WthWpWec => Some(ProcPreset::WthWpVc),
        ProcPreset::WthWpVc => Some(ProcPreset::WthWpWec),
        _ => None,
    }
}

impl Predictor {
    pub fn new(fanout: usize) -> Predictor {
        Predictor {
            fanout,
            tables: Mutex::new(Tables {
                clients: HashMap::new(),
                client_order: VecDeque::new(),
                transitions: HashMap::new(),
                transition_order: VecDeque::new(),
            }),
        }
    }

    /// Observe one demand submission from `client` and return up to
    /// `fanout` predicted next specs, best first.  Never returns the
    /// submitted spec itself.
    pub fn predict(&self, client: &str, spec: &JobSpec) -> Vec<JobSpec> {
        let key = spec.dedup_key();
        let mut g = lock(&self.tables);

        // Learn the transition last -> spec before consulting the tables,
        // so an exact repeat of a sweep predicts perfectly from pass 2 on.
        let prev_spec = match g.clients.get(client) {
            Some(h) => h.last.clone(),
            None => None,
        };
        if let Some(last) = &prev_spec {
            let last_key = last.dedup_key();
            if last_key != key {
                if !g.transitions.contains_key(&last_key) {
                    if g.transitions.len() >= MAX_TRANSITIONS {
                        if let Some(old) = g.transition_order.pop_front() {
                            g.transitions.remove(&old);
                        }
                    }
                    g.transition_order.push_back(last_key.clone());
                    g.transitions.insert(last_key.clone(), Vec::new());
                }
                let row = g.transitions.get_mut(&last_key).unwrap();
                match row.iter_mut().find(|(s, _)| s.dedup_key() == key) {
                    Some((_, n)) => *n += 1,
                    None => {
                        if row.len() < MAX_SUCCESSORS {
                            row.push((spec.clone(), 1));
                        } else {
                            // Replace the weakest successor (last among ties).
                            let mut weakest = 0;
                            for (i, (_, n)) in row.iter().enumerate() {
                                if *n <= row[weakest].1 {
                                    weakest = i;
                                }
                            }
                            row[weakest] = (spec.clone(), 1);
                        }
                    }
                }
            }
        }

        // Candidate generation: (score, spec), fixed rule order.
        let mut cands: Vec<(u32, JobSpec)> = Vec::new();

        // 1. Learned successors of this key (score 100 + observation count).
        if let Some(row) = g.transitions.get(&key) {
            for (s, n) in row {
                cands.push((100 + n, s.clone()));
            }
        }

        // 2. Stride continuation from this client's history: prev -> spec
        //    stepped the side axis by d, so predict another step of d.
        if let Some(prev) = &prev_spec {
            if let Some(next) = side_stride(prev, spec) {
                cands.push((90, next));
            }
        }

        // 3. Static sweep-axis neighborhood.
        if let Some(i) = axis_idx(&SIDE_AXIS, spec.key.side_entries) {
            if i + 1 < SIDE_AXIS.len() {
                cands.push((60, with_side(spec, SIDE_AXIS[i + 1])));
            }
            if i > 0 {
                cands.push((55, with_side(spec, SIDE_AXIS[i - 1])));
            }
        }
        if let Some(i) = axis_idx(&WAYS_AXIS, spec.key.l1_ways) {
            if i + 1 < WAYS_AXIS.len() {
                cands.push((50, with_ways(spec, WAYS_AXIS[i + 1])));
            }
            if i > 0 {
                cands.push((45, with_ways(spec, WAYS_AXIS[i - 1])));
            }
        }
        if let Some(p) = sibling_preset(spec.key.preset) {
            let mut s = spec.clone();
            s.key.preset = p;
            cands.push((40, s));
        }
        if let JobKind::Sim { .. } = spec.kind {
            if spec.scale.units <= (1 << 19) {
                let mut s = spec.clone();
                s.scale = Scale {
                    units: spec.scale.units * 2,
                };
                cands.push((10, s));
            }
        }

        // Update the client history (bounded, oldest client evicted).
        if !g.clients.contains_key(client) {
            if g.clients.len() >= MAX_CLIENTS {
                if let Some(old) = g.client_order.pop_front() {
                    g.clients.remove(&old);
                }
            }
            g.client_order.push_back(client.to_string());
            g.clients.insert(
                client.to_string(),
                ClientHist {
                    prev: None,
                    last: None,
                },
            );
        }
        let hist = g.clients.get_mut(client).unwrap();
        hist.prev = prev_spec;
        hist.last = Some(spec.clone());
        drop(g);

        // Rank: score desc, dedup_key asc as the deterministic tiebreak;
        // drop self and duplicates; cap at fanout.
        let mut keyed: Vec<(u32, String, JobSpec)> = cands
            .into_iter()
            .map(|(sc, s)| {
                let k = s.dedup_key();
                (sc, k, s)
            })
            .filter(|(_, k, _)| *k != key)
            .collect();
        keyed.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for (_, k, s) in keyed {
            if out.len() >= self.fanout {
                break;
            }
            if seen.insert(k) {
                out.push(s);
            }
        }
        out
    }
}

fn with_side(spec: &JobSpec, side: u8) -> JobSpec {
    let mut s = spec.clone();
    s.key.side_entries = side;
    s
}

fn with_ways(spec: &JobSpec, ways: u8) -> JobSpec {
    let mut s = spec.clone();
    s.key.l1_ways = ways;
    s
}

/// If `prev -> cur` stepped the side axis by `d` (same bench, preset,
/// ways, scale), the predicted continuation is one more step of `d`.
fn side_stride(prev: &JobSpec, cur: &JobSpec) -> Option<JobSpec> {
    if prev.bench_field() != cur.bench_field()
        || prev.kind_name() != cur.kind_name()
        || prev.scale.units != cur.scale.units
        || prev.key.preset != cur.key.preset
        || prev.key.l1_ways != cur.key.l1_ways
    {
        return None;
    }
    let a = axis_idx(&SIDE_AXIS, prev.key.side_entries)? as isize;
    let b = axis_idx(&SIDE_AXIS, cur.key.side_entries)? as isize;
    let d = b - a;
    if d == 0 {
        return None;
    }
    let next = b + d;
    if next < 0 || next as usize >= SIDE_AXIS.len() {
        return None;
    }
    Some(with_side(cur, SIDE_AXIS[next as usize]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(bench: &str, side: u8, ways: u8) -> JobSpec {
        JobSpec::parse(&format!(
            "{{\"bench\": \"{bench}\", \"cfg\": {{\"side_entries\": {side}, \"l1_ways\": {ways}}}}}"
        ))
        .unwrap()
    }

    #[test]
    fn fanout_zero_predicts_nothing_but_still_learns() {
        let p = Predictor::new(0);
        assert!(p.predict("c", &spec("164.gzip", 8, 1)).is_empty());
        assert!(p.predict("c", &spec("164.gzip", 16, 1)).is_empty());
        // The tables learned the transition even while muted: a fanout-1
        // predictor fed the same history would now lean on it, so the
        // muted predictor must have recorded it too.
        let loud = Predictor::new(1);
        loud.predict("c", &spec("164.gzip", 8, 1));
        let expect = loud.predict("c", &spec("164.gzip", 16, 1));
        assert_eq!(expect.len(), 1);
    }

    #[test]
    fn predictions_are_deterministic_and_never_echo_the_input() {
        let p = Predictor::new(4);
        let s = spec("181.mcf", 8, 2);
        let a = p.predict("c1", &s);
        let p2 = Predictor::new(4);
        let b = p2.predict("c1", &s);
        assert_eq!(
            a.iter().map(JobSpec::dedup_key).collect::<Vec<_>>(),
            b.iter().map(JobSpec::dedup_key).collect::<Vec<_>>()
        );
        assert!(a.iter().all(|c| c.dedup_key() != s.dedup_key()));
        assert!(!a.is_empty() && a.len() <= 4);
    }

    #[test]
    fn adjacent_sweep_points_lead_the_static_neighborhood() {
        let p = Predictor::new(8);
        let out = p.predict("c1", &spec("181.mcf", 8, 2));
        let keys: Vec<String> = out.iter().map(JobSpec::dedup_key).collect();
        // Next side size up the axis is the top static candidate.
        assert_eq!(out[0].key.side_entries, 16, "{keys:?}");
        assert!(out.iter().any(|s| s.key.side_entries == 4), "{keys:?}");
        assert!(out.iter().any(|s| s.key.l1_ways == 4), "{keys:?}");
        assert!(out.iter().any(|s| s.key.l1_ways == 1), "{keys:?}");
    }

    #[test]
    fn stride_continuation_outranks_static_neighbors() {
        let p = Predictor::new(4);
        p.predict("c1", &spec("181.mcf", 8, 2));
        let out = p.predict("c1", &spec("181.mcf", 16, 2));
        // 8 -> 16 stepped +1, so 24 (stride) outranks 32's absence and
        // sits above the generic +1 neighbor (which is also 24 here —
        // the point is it is ranked first).
        assert_eq!(out[0].key.side_entries, 24);
        // A backwards walk strides down.
        let p = Predictor::new(4);
        p.predict("c2", &spec("181.mcf", 32, 2));
        let out = p.predict("c2", &spec("181.mcf", 24, 2));
        assert_eq!(out[0].key.side_entries, 16);
    }

    #[test]
    fn learned_transitions_dominate_after_one_observation() {
        let p = Predictor::new(4);
        // Teach: mcf/8 is followed by gzip/128 (nothing adjacency would
        // ever guess).
        p.predict("c1", &spec("181.mcf", 8, 2));
        p.predict("c1", &spec("164.gzip", 128, 2));
        // A different client at mcf/8 now gets the learned successor
        // first — the table is global.
        let out = p.predict("c2", &spec("181.mcf", 8, 2));
        assert_eq!(out[0].dedup_key(), spec("164.gzip", 128, 2).dedup_key());
    }

    #[test]
    fn fanout_caps_the_candidate_list() {
        let p = Predictor::new(2);
        let out = p.predict("c1", &spec("181.mcf", 16, 2));
        assert_eq!(out.len(), 2);
    }
}
