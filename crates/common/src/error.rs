//! The common error type for the simulator workspace.

use std::fmt;

use crate::ids::Addr;

/// Errors surfaced by the simulator's public APIs.
///
/// Faults that a real machine would turn into an exception (unmapped access,
/// misaligned access) are errors only on *correct* execution paths: wrong
/// execution (wrong path / wrong thread) drops faulting operations silently,
/// exactly as the modeled hardware would squash them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A correct-path access touched an address outside the memory image.
    UnmappedAccess { addr: Addr, what: &'static str },
    /// A correct-path access was not aligned to its natural size.
    MisalignedAccess { addr: Addr, bytes: u64 },
    /// The program counter left the text segment.
    PcOutOfRange { pc: u64 },
    /// The assembler rejected the source (message carries line context).
    Assembler(String),
    /// An instruction word did not decode.
    BadEncoding { word: u64 },
    /// The machine exceeded its cycle budget without reaching `halt` —
    /// almost always a deadlocked dependence-wait or a runaway program.
    CycleLimit { limit: u64 },
    /// A structural configuration error (e.g. non-power-of-two cache sets).
    Config(String),
    /// The program executed an instruction that is invalid in its context
    /// (e.g. `fork` outside a parallel region).
    IllegalInstruction { pc: u64, what: &'static str },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnmappedAccess { addr, what } => {
                write!(f, "unmapped {what} access at {addr}")
            }
            SimError::MisalignedAccess { addr, bytes } => {
                write!(f, "misaligned {bytes}-byte access at {addr}")
            }
            SimError::PcOutOfRange { pc } => write!(f, "pc 0x{pc:x} outside text segment"),
            SimError::Assembler(msg) => write!(f, "assembler: {msg}"),
            SimError::BadEncoding { word } => write!(f, "bad instruction encoding 0x{word:016x}"),
            SimError::CycleLimit { limit } => {
                write!(f, "simulation exceeded cycle limit {limit} without halting")
            }
            SimError::Config(msg) => write!(f, "configuration: {msg}"),
            SimError::IllegalInstruction { pc, what } => {
                write!(f, "illegal instruction at pc 0x{pc:x}: {what}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Workspace-wide result alias.
pub type SimResult<T> = Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = SimError::UnmappedAccess {
            addr: Addr(0x40),
            what: "load",
        };
        assert_eq!(e.to_string(), "unmapped load access at 0x40");
        let e = SimError::CycleLimit { limit: 10 };
        assert!(e.to_string().contains("cycle limit 10"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&SimError::BadEncoding { word: 1 });
    }
}
