//! Per-workload behavioral bands: each analog must exhibit the memory and
//! speculation character it was designed to model (DESIGN.md §5), so a
//! refactor cannot silently turn a pointer-chasing benchmark into a
//! streaming one.

use wec_core::config::ProcPreset;
use wec_workloads::{run_and_verify, Bench, Scale};

#[test]
fn fractions_parallelized_track_table2() {
    // (bench, paper fraction %, tolerance in points)
    let targets = [
        (Bench::Vpr, 8.6, 4.0),
        (Bench::Gzip, 15.7, 4.0),
        (Bench::Mcf, 36.1, 6.0),
        (Bench::Parser, 17.2, 4.0),
        (Bench::Equake, 21.3, 4.0),
        (Bench::Mesa, 17.3, 4.0),
    ];
    let handles: Vec<_> = targets
        .into_iter()
        .map(|(bench, want, tol)| {
            std::thread::spawn(move || {
                let w = bench.build(Scale::SMOKE);
                let r = run_and_verify(&w, ProcPreset::Orig.machine(8)).unwrap();
                let got = r.metrics.fraction_parallelized() * 100.0;
                assert!(
                    (got - want).abs() <= tol,
                    "{}: fraction {got:.1}% vs paper {want:.1}% (tol {tol})",
                    w.name
                );
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn every_workload_exercises_wrong_execution_under_wec() {
    let handles: Vec<_> = Bench::ALL
        .into_iter()
        .map(|bench| {
            std::thread::spawn(move || {
                let w = bench.build(Scale::SMOKE);
                let r = run_and_verify(&w, ProcPreset::WthWpWec.machine(8)).unwrap();
                let m = &r.metrics;
                assert!(
                    m.l1d.wrong_accesses > 0,
                    "{}: no wrong-execution loads at all",
                    w.name
                );
                assert!(
                    m.threads_marked_wrong > 0,
                    "{}: no wrong threads were created",
                    w.name
                );
                assert!(m.regions > 0 && m.forks > 0);
                // The Figure 17 trade-off must be visible per benchmark:
                // wrong execution adds traffic…
                let base = run_and_verify(&w, ProcPreset::Orig.machine(8)).unwrap();
                assert!(
                    m.l1d.traffic() > base.metrics.l1d.traffic(),
                    "{}: wrong execution added no L1 traffic",
                    w.name
                );
                // …and the WEC must convert some of it into useful fetches
                // on every benchmark except (possibly) branchless mesa.
                if bench != Bench::Mesa {
                    assert!(
                        m.l1d.useful_wrong_fetches > 0,
                        "{}: wrong fetches were never useful",
                        w.name
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn branchy_int_analogs_mispredict_like_spec_int() {
    // The chase-heavy INT analogs should sit in a realistic 3–20%
    // misprediction band; mesa (regular FP streaming) below 1%.
    for (bench, lo, hi) in [
        (Bench::Mcf, 2.0, 20.0),
        (Bench::Parser, 3.0, 25.0),
        (Bench::Gzip, 3.0, 25.0),
        (Bench::Mesa, 0.0, 1.0),
    ] {
        let w = bench.build(Scale::SMOKE);
        let r = run_and_verify(&w, ProcPreset::Orig.machine(8)).unwrap();
        let rate = r.metrics.mispredict_rate() * 100.0;
        assert!(
            rate >= lo && rate <= hi,
            "{}: mispredict rate {rate:.2}% outside [{lo}, {hi}]",
            w.name
        );
    }
}

#[test]
fn working_sets_stress_the_8kb_l1() {
    // Every analog must actually miss in the paper's default L1 — a
    // benchmark that fits in 8 KB cannot say anything about the WEC.
    for bench in Bench::ALL {
        let w = bench.build(Scale::SMOKE);
        let r = run_and_verify(&w, ProcPreset::Orig.machine(8)).unwrap();
        let miss_rate = r.metrics.l1d.demand_miss_rate();
        assert!(
            miss_rate > 0.05,
            "{}: L1 miss rate {miss_rate:.3} too low to exercise the WEC",
            w.name
        );
    }
}
