//! True-LRU recency ordering for a cache set.
//!
//! The paper's caches (L1, L2, WEC, victim cache, prefetch buffer) all use
//! LRU replacement.  Recency is tracked with per-way timestamps from a
//! monotonic clock: a touch is one store plus an increment (no vector
//! shuffling), the LRU way is the minimum stamp, the MRU the maximum.
//! Stamps are unique by construction (each touch consumes a fresh clock
//! value), so the order is total and exactly matches the move-to-front
//! list this replaces.

/// Recency order over `n` ways. Way indices are stable; only their stamps
/// change.
#[derive(Clone, Debug)]
pub struct LruOrder {
    /// Last-touch time per way; larger = more recent. Initial stamps are
    /// descending so way 0 starts most recent and way `n-1` least.
    stamps: Vec<u64>,
    /// Next stamp to hand out.
    clock: u64,
}

impl LruOrder {
    /// New order for `ways` ways (initial order: way 0 most recent).
    pub fn new(ways: usize) -> Self {
        assert!((1..=255).contains(&ways));
        LruOrder {
            stamps: (0..ways as u64).rev().collect(),
            clock: ways as u64,
        }
    }

    pub fn ways(&self) -> usize {
        self.stamps.len()
    }

    /// Mark `way` most recently used.
    pub fn touch(&mut self, way: usize) {
        assert!(way < self.stamps.len(), "way out of range");
        self.stamps[way] = self.clock;
        self.clock += 1;
    }

    /// The least recently used way (the replacement victim).
    pub fn lru(&self) -> usize {
        let mut best = 0;
        for w in 1..self.stamps.len() {
            if self.stamps[w] < self.stamps[best] {
                best = w;
            }
        }
        best
    }

    /// The most recently used way.
    pub fn mru(&self) -> usize {
        let mut best = 0;
        for w in 1..self.stamps.len() {
            if self.stamps[w] > self.stamps[best] {
                best = w;
            }
        }
        best
    }

    /// Recency rank of `way` (0 = most recent).
    pub fn rank(&self, way: usize) -> usize {
        assert!(way < self.stamps.len(), "way out of range");
        let s = self.stamps[way];
        self.stamps.iter().filter(|&&x| x > s).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_order() {
        let l = LruOrder::new(4);
        assert_eq!(l.mru(), 0);
        assert_eq!(l.lru(), 3);
        assert_eq!(l.ways(), 4);
    }

    #[test]
    fn touch_moves_to_front() {
        let mut l = LruOrder::new(4);
        l.touch(2);
        assert_eq!(l.mru(), 2);
        assert_eq!(l.lru(), 3);
        l.touch(3);
        assert_eq!(l.mru(), 3);
        assert_eq!(l.lru(), 1);
    }

    #[test]
    fn rank_tracks_recency() {
        let mut l = LruOrder::new(3);
        l.touch(1);
        l.touch(2);
        assert_eq!(l.rank(2), 0);
        assert_eq!(l.rank(1), 1);
        assert_eq!(l.rank(0), 2);
    }

    #[test]
    fn single_way_degenerates() {
        let mut l = LruOrder::new(1);
        l.touch(0);
        assert_eq!(l.lru(), 0);
        assert_eq!(l.mru(), 0);
    }

    #[test]
    fn repeated_touch_sequence_matches_reference() {
        // Reference model: a Vec where touch = move to front.
        let mut l = LruOrder::new(8);
        let mut reference: Vec<usize> = (0..8).collect();
        let seq = [3usize, 1, 4, 1, 5, 2, 6, 5, 3, 7, 0, 0, 2];
        for &w in &seq {
            l.touch(w);
            let pos = reference.iter().position(|&x| x == w).unwrap();
            reference.remove(pos);
            reference.insert(0, w);
            assert_eq!(l.mru(), reference[0]);
            assert_eq!(l.lru(), *reference.last().unwrap());
        }
    }

    #[test]
    fn full_rank_order_matches_reference() {
        let mut l = LruOrder::new(5);
        let mut reference: Vec<usize> = (0..5).collect();
        for &w in &[4usize, 2, 2, 0, 3, 1, 4, 0] {
            l.touch(w);
            let pos = reference.iter().position(|&x| x == w).unwrap();
            reference.remove(pos);
            reference.insert(0, w);
        }
        for (rank, &way) in reference.iter().enumerate() {
            assert_eq!(l.rank(way), rank);
        }
    }
}
