//! End-to-end cluster tests: a live router fronting live `wec-serve`
//! backends (and, for the failure matrix, hand-rolled fake backends),
//! driven over real sockets.
//!
//! The battery pins the sharding contract down:
//!
//! - racing identical submissions through the router executes exactly
//!   once, cluster-wide (cross-node dedup by rendezvous construction);
//! - a routed result is byte-identical to a direct backend fetch,
//!   including the raw `/events` chunk stream;
//! - queue-full `503`s retry in place and then pass through, draining
//!   and dead owners re-shard down the candidate order, and killing a
//!   backend mid-life re-shards onto the shared store without a second
//!   execution;
//! - forwarded speculation hints land on the backend that owns the
//!   *prediction's* hash, and the predicted demand job arrives warm;
//! - every `/stats` scrape and the drain-time `router.json` conserve
//!   (cluster totals == sum of embedded backend ledgers).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use wec_router::state::LOCAL_ID_BITS;
use wec_router::{Ring, Router, RouterConfig, RouterState};
use wec_serve::{JobSpec, Predictor, ServeConfig, Server, SpecConfig};
use wec_telemetry::json::{self, Json};
use wec_telemetry::schema;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wec-router-e2e-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

type ServerHandle = (SocketAddr, std::thread::JoinHandle<std::io::Result<()>>);

/// A real backend on an ephemeral port.  Samplers are off and workers
/// pinned low so a test cluster stays cheap.
fn start_backend(cfg: ServeConfig) -> ServerHandle {
    let server = Server::bind("127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn backend_cfg(store: Option<PathBuf>) -> ServeConfig {
    ServeConfig {
        workers: 2,
        queue_cap: 16,
        store,
        log_dir: None,
        sample_interval: Duration::ZERO,
        ..ServeConfig::default()
    }
}

type RouterHandle = (
    Arc<RouterState>,
    SocketAddr,
    std::thread::JoinHandle<std::io::Result<()>>,
);

fn start_router(cfg: RouterConfig) -> RouterHandle {
    let router = Router::bind("127.0.0.1:0", cfg).unwrap();
    let state = router.state();
    let addr = router.local_addr().unwrap();
    let handle = std::thread::spawn(move || router.run());
    (state, addr, handle)
}

/// Write raw bytes, half-close, read the whole response.
fn send_raw(addr: SocketAddr, raw: &[u8]) -> String {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_nodelay(true).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    let _ = s.write_all(raw);
    let _ = s.shutdown(std::net::Shutdown::Write);
    let mut out = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match s.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => out.extend_from_slice(&buf[..n]),
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn dechunk(body: &str) -> String {
    let mut out = String::new();
    let mut rest = body;
    loop {
        let (len_line, after) = rest.split_once("\r\n").expect("chunk size line");
        let len = usize::from_str_radix(len_line.trim(), 16).expect("hex chunk size");
        if len == 0 {
            break;
        }
        out.push_str(&after[..len]);
        rest = &after[len + 2..];
    }
    out
}

fn parse_response(text: &str) -> (u16, String) {
    let (head, body) = text.split_once("\r\n\r\n").expect("no header terminator");
    let status = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    if head
        .to_ascii_lowercase()
        .contains("transfer-encoding: chunked")
    {
        (status, dechunk(body))
    } else {
        (status, body.to_string())
    }
}

fn raw_request(method: &str, path: &str, body: Option<&str>) -> String {
    let mut raw = format!("{method} {path} HTTP/1.1\r\nHost: e2e\r\nConnection: close\r\n");
    if let Some(b) = body {
        raw.push_str(&format!(
            "Content-Type: application/json\r\nContent-Length: {}\r\n",
            b.len()
        ));
    }
    raw.push_str("\r\n");
    if let Some(b) = body {
        raw.push_str(b);
    }
    raw
}

fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    parse_response(&send_raw(addr, raw_request(method, path, body).as_bytes()))
}

fn poll_terminal(addr: SocketAddr, id: u64) -> Json {
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let (status, body) = request(addr, "GET", &format!("/jobs/{id}"), None);
        assert_eq!(status, 200, "{body}");
        let v = json::parse(&body).unwrap();
        let state = v.get("state").and_then(Json::as_str).unwrap().to_string();
        if state == "done" || state == "failed" {
            return v;
        }
        assert!(Instant::now() < deadline, "job {id} stuck in {state}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn poll_until(what: &str, f: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while !f() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn u64_at(v: &Json, path: &[&str]) -> u64 {
    let mut cur = v;
    for p in path {
        cur = cur.get(p).unwrap_or_else(|| panic!("missing {p}"));
    }
    cur.as_u64().unwrap()
}

/// A scripted backend: answers `/healthz` healthy, `POST /jobs` from the
/// script (`n` = how many submits it has seen before this one), 404 for
/// the rest.  Reads each request to EOF (the router half-closes), so no
/// HTTP parsing is needed.  The thread is detached; it dies with the
/// test process.
fn fake_backend(on_jobs: impl Fn(u64) -> String + Send + 'static) -> (String, Arc<AtomicU64>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let posts = Arc::new(AtomicU64::new(0));
    let seen = posts.clone();
    std::thread::spawn(move || {
        for conn in listener.incoming() {
            let Ok(mut s) = conn else { continue };
            let _ = s.set_read_timeout(Some(Duration::from_secs(10)));
            let mut raw = Vec::new();
            let _ = s.read_to_end(&mut raw);
            let text = String::from_utf8_lossy(&raw).into_owned();
            let mut parts = text.split_whitespace();
            let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
            let resp = if path == "/healthz" {
                let body = "{\"ok\":true,\"draining\":false}";
                format!(
                    "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
                    body.len()
                )
            } else if method == "POST" && path == "/jobs" {
                let n = seen.fetch_add(1, Ordering::SeqCst);
                on_jobs(n)
            } else {
                "HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n".to_string()
            };
            let _ = s.write_all(resp.as_bytes());
        }
    });
    (addr, posts)
}

/// An address that refuses connections: bind an ephemeral port, then
/// free it.
fn dead_addr() -> String {
    let l = TcpListener::bind("127.0.0.1:0").unwrap();
    l.local_addr().unwrap().to_string()
}

/// A scale-1 spec body whose rendezvous primary is backend `want` of
/// `addrs` — found by walking the side-structure axis (each point is an
/// independent coin flip across the ring).
fn spec_owned_by(addrs: &[String], want: usize) -> String {
    let ring = Ring::new(addrs).unwrap();
    for side in [2u8, 4, 8, 16, 24, 32, 64, 128] {
        for bench in ["164.gzip", "181.mcf"] {
            let body = format!(
                "{{\"bench\": \"{bench}\", \"scale\": 1, \"cfg\": {{\"side_entries\": {side}}}}}"
            );
            let key = JobSpec::parse(&body).unwrap().dedup_key();
            if ring.candidates(&key)[0] == want {
                return body;
            }
        }
    }
    panic!("no scale-1 spec is owned by backend {want} of {addrs:?}");
}

fn router_cfg(backends: Vec<String>) -> RouterConfig {
    RouterConfig {
        backends,
        health_interval: Duration::from_millis(50),
        ..RouterConfig::default()
    }
}

fn drain_backend(addr: SocketAddr, handle: std::thread::JoinHandle<std::io::Result<()>>) {
    let (s, _) = request(addr, "POST", "/shutdown", None);
    assert_eq!(s, 200);
    handle.join().unwrap().unwrap();
}

fn drain_router(addr: SocketAddr, handle: std::thread::JoinHandle<std::io::Result<()>>) {
    let (s, _) = request(addr, "POST", "/shutdown", None);
    assert_eq!(s, 200);
    handle.join().unwrap().unwrap();
}

#[test]
fn racing_identical_submissions_execute_once_and_results_are_byte_identical() {
    let store = scratch("race-store");
    let (a, ha) = start_backend(backend_cfg(Some(store.clone())));
    let (b, hb) = start_backend(backend_cfg(Some(store)));
    let addrs = vec![a.to_string(), b.to_string()];
    let (state, raddr, hr) = start_router(router_cfg(addrs.clone()));

    let body = spec_owned_by(&addrs, 0);
    let owner = a;

    // Race four identical submissions through the router concurrently.
    let records: Vec<(u16, String)> = {
        let mut joins = Vec::new();
        for _ in 0..4 {
            let body = body.clone();
            joins.push(std::thread::spawn(move || {
                request(raddr, "POST", "/jobs", Some(&body))
            }));
        }
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    };
    let mut ids = Vec::new();
    for (s, r) in &records {
        assert_eq!(*s, 200, "{r}");
        let rec = json::parse(r).unwrap();
        schema::validate_job_record(&rec, "routed record").unwrap();
        ids.push(u64_at(&rec, &["id"]));
    }
    // Every composite id names the owner (top bits = backend 0 + 1) and
    // cannot collide with a raw local id.
    for id in &ids {
        assert_eq!(id >> LOCAL_ID_BITS, 1, "id {id:#x} not owned by backend 0");
        assert!(*id >= 1 << LOCAL_ID_BITS);
    }

    let rec = poll_terminal(raddr, ids[0]);
    assert_eq!(rec.get("state").unwrap().as_str(), Some("done"));
    assert_eq!(rec.get("source").unwrap().as_str(), Some("cold"));
    let local = ids[0] & ((1 << LOCAL_ID_BITS) - 1);

    // Exactly-once, cluster-wide: one cold execution, everything else
    // deduped in flight or answered warm; the non-owner saw nothing.
    let (ss, stats) = request(raddr, "GET", "/stats", None);
    assert_eq!(ss, 200);
    let report = schema::validate_router_stats_json(&stats).unwrap();
    assert_eq!(report.backends, 2);
    assert_eq!(report.scraped, 2);
    let v = json::parse(&stats).unwrap();
    assert_eq!(u64_at(&v, &["cluster", "cache", "cold"]), 1, "{stats}");
    assert_eq!(u64_at(&v, &["cluster", "jobs", "submitted"]), 4);
    let (sb, bstats) = request(b, "GET", "/stats", None);
    assert_eq!(sb, 200);
    assert_eq!(
        u64_at(&json::parse(&bstats).unwrap(), &["jobs", "submitted"]),
        0,
        "the non-owner must never see the key"
    );

    // Byte-identity: the routed result and the direct fetch are the same
    // bytes, and the raw routed /events response (status line, headers,
    // chunk framing and all) is exactly what the backend produces.
    let (sr, routed_kv) = request(raddr, "GET", &format!("/jobs/{}/result.kv", ids[0]), None);
    let (sd, direct_kv) = request(owner, "GET", &format!("/jobs/{local}/result.kv"), None);
    assert_eq!((sr, sd), (200, 200));
    assert_eq!(routed_kv, direct_kv);
    assert!(routed_kv.contains("cycles "), "{routed_kv:?}");
    let routed_events = send_raw(
        raddr,
        raw_request("GET", &format!("/jobs/{}/events", ids[0]), None).as_bytes(),
    );
    let direct_events = send_raw(
        owner,
        raw_request("GET", &format!("/jobs/{local}/events"), None).as_bytes(),
    );
    assert_eq!(routed_events, direct_events, "events must relay verbatim");
    let report = schema::validate_progress_jsonl(&parse_response(&routed_events).1).unwrap();
    assert_eq!((report.starts, report.finishes), (1, 1));

    assert_eq!(state.proxied.load(Ordering::SeqCst), 4);
    assert_eq!(state.resharded.load(Ordering::SeqCst), 0);
    drain_router(raddr, hr);
    drain_backend(a, ha);
    drain_backend(b, hb);
}

#[test]
fn draining_owner_reshards_to_the_next_candidate() {
    // The owner answers every submit "I am draining"; the job must land
    // on the next rendezvous candidate and be counted as re-sharded.
    let (fake, posts) = fake_backend(|_| {
        "HTTP/1.1 503 Service Unavailable\r\nX-Wec-Draining: true\r\nRetry-After: 1\r\nContent-Length: 0\r\n\r\n"
            .to_string()
    });
    let (real, hreal) = start_backend(backend_cfg(None));
    let addrs = vec![fake.clone(), real.to_string()];
    let mut cfg = router_cfg(addrs.clone());
    // Only the initial health pass runs: the fake's /healthz claims "not
    // draining" (its submits say otherwise), and a later probe would, by
    // design, read that as a restart and clear the submit-path mark.
    cfg.health_interval = Duration::from_secs(3600);
    let (state, raddr, hr) = start_router(cfg);

    let body = spec_owned_by(&addrs, 0);
    let (s, rec) = request(raddr, "POST", "/jobs", Some(&body));
    assert_eq!(s, 200, "{rec}");
    let id = u64_at(&json::parse(&rec).unwrap(), &["id"]);
    assert_eq!(id >> LOCAL_ID_BITS, 2, "must be answered by backend 1");
    assert_eq!(posts.load(Ordering::SeqCst), 1, "draining burns no retries");
    assert_eq!(state.resharded.load(Ordering::SeqCst), 1);
    assert_eq!(state.retries.load(Ordering::SeqCst), 0);

    // The ring remembers: the fake is marked draining in /stats.
    let (ss, stats) = request(raddr, "GET", "/stats", None);
    assert_eq!(ss, 200);
    schema::validate_router_stats_json(&stats).unwrap();
    let v = json::parse(&stats).unwrap();
    let states: Vec<&str> = v
        .get("backends")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|b| b.get("state").unwrap().as_str().unwrap())
        .collect();
    assert_eq!(states[0], "draining", "{stats}");

    poll_terminal(raddr, id);
    drain_router(raddr, hr);
    drain_backend(real, hreal);
}

#[test]
fn queue_full_is_retried_in_place_then_passed_through() {
    // A saturated owner is retried in place (moving the key would forfeit
    // dedup) and its backpressure passes through after the retry budget.
    let (fake, posts) = fake_backend(|_| {
        "HTTP/1.1 503 Service Unavailable\r\nRetry-After: 0\r\nContent-Length: 0\r\n\r\n"
            .to_string()
    });
    let mut cfg = router_cfg(vec![fake]);
    cfg.retries = 2;
    let (state, raddr, hr) = start_router(cfg);

    let raw = send_raw(
        raddr,
        raw_request("POST", "/jobs", Some("{\"bench\": \"181.mcf\", \"scale\": 1}")).as_bytes(),
    );
    assert!(raw.starts_with("HTTP/1.1 503"), "{raw}");
    assert!(raw.contains("Retry-After: 0"), "the owner's hint passes through: {raw}");
    assert_eq!(posts.load(Ordering::SeqCst), 3, "1 attempt + 2 retries");
    assert_eq!(state.retries.load(Ordering::SeqCst), 2);
    assert_eq!(state.rejected.load(Ordering::SeqCst), 1);
    assert_eq!(state.resharded.load(Ordering::SeqCst), 0, "answered by the primary");
    drain_router(raddr, hr);
}

#[test]
fn dead_backends_are_skipped_and_connect_failures_reshard() {
    // (a) Dead at startup: the synchronous first health pass marks the
    // corpse, so the first submit never even tries it.
    let (real, hreal) = start_backend(backend_cfg(None));
    let addrs = vec![dead_addr(), real.to_string()];
    let mut cfg = router_cfg(addrs.clone());
    cfg.dead_after = 1;
    let (state, raddr, hr) = start_router(cfg);

    let body = spec_owned_by(&addrs, 0);
    let (s, rec) = request(raddr, "POST", "/jobs", Some(&body));
    assert_eq!(s, 200, "{rec}");
    let id = u64_at(&json::parse(&rec).unwrap(), &["id"]);
    assert_eq!(id >> LOCAL_ID_BITS, 2, "answered by the live backend");
    assert_eq!(state.resharded.load(Ordering::SeqCst), 1);
    let (ss, stats) = request(raddr, "GET", "/stats", None);
    assert_eq!(ss, 200);
    let report = schema::validate_router_stats_json(&stats).unwrap();
    assert_eq!(report.backends, 2);
    assert_eq!(report.scraped, 1, "the corpse has no ledger to embed");
    assert!(stats.contains("\"state\":\"dead\""), "{stats}");
    poll_terminal(raddr, id);
    drain_router(raddr, hr);

    // (b) Dies mid-submit: with a high dead_after the health pass has not
    // condemned it, so the submit itself hits the connect failure and
    // re-shards on the spot.
    let addrs = vec![dead_addr(), real.to_string()];
    let mut cfg = router_cfg(addrs.clone());
    cfg.dead_after = 99;
    cfg.health_interval = Duration::from_secs(3600);
    let (state, raddr, hr) = start_router(cfg);
    let body = spec_owned_by(&addrs, 0);
    let (s, rec) = request(raddr, "POST", "/jobs", Some(&body));
    assert_eq!(s, 200, "{rec}");
    let id = u64_at(&json::parse(&rec).unwrap(), &["id"]);
    assert_eq!(id >> LOCAL_ID_BITS, 2);
    assert_eq!(state.resharded.load(Ordering::SeqCst), 1);
    poll_terminal(raddr, id);
    drain_router(raddr, hr);
    drain_backend(real, hreal);
}

#[test]
fn killing_a_backend_reshards_onto_the_shared_store_without_reexecution() {
    let store = scratch("kill-store");
    let (a, ha) = start_backend(backend_cfg(Some(store.clone())));
    let (b, hb) = start_backend(backend_cfg(Some(store)));
    let addrs = vec![a.to_string(), b.to_string()];
    let mut cfg = router_cfg(addrs.clone());
    cfg.dead_after = 2;
    let (state, raddr, hr) = start_router(cfg);

    // Cold on the owner, then capture the result bytes.
    let body = spec_owned_by(&addrs, 0);
    let (s, rec) = request(raddr, "POST", "/jobs", Some(&body));
    assert_eq!(s, 200, "{rec}");
    let id = u64_at(&json::parse(&rec).unwrap(), &["id"]);
    assert_eq!(id >> LOCAL_ID_BITS, 1);
    let rec = poll_terminal(raddr, id);
    assert_eq!(rec.get("source").unwrap().as_str(), Some("cold"));
    let (sk, kv_before) = request(raddr, "GET", &format!("/jobs/{id}/result.kv"), None);
    assert_eq!(sk, 200);

    // Kill the owner and wait for the health thread to notice.
    drain_backend(a, ha);
    poll_until("backend 0 condemned", || !state.ring.backends[0].routable());

    // The same key re-shards to the survivor, which answers from the
    // shared store — no second execution anywhere.
    let (s, rec) = request(raddr, "POST", "/jobs", Some(&body));
    assert_eq!(s, 200, "{rec}");
    let rec = json::parse(&rec).unwrap();
    let id2 = u64_at(&rec, &["id"]);
    assert_eq!(id2 >> LOCAL_ID_BITS, 2, "answered by the survivor");
    let rec = poll_terminal(raddr, id2);
    assert_eq!(rec.get("source").unwrap().as_str(), Some("disk"));
    assert!(state.resharded.load(Ordering::SeqCst) >= 1);
    let (sb, bstats) = request(b, "GET", "/stats", None);
    assert_eq!(sb, 200);
    let v = json::parse(&bstats).unwrap();
    assert_eq!(u64_at(&v, &["cache", "cold"]), 0, "{bstats}");
    assert_eq!(u64_at(&v, &["cache", "disk_hits"]), 1, "{bstats}");

    // The re-served result is the stored bytes, unchanged.
    let (sk, kv_after) = request(raddr, "GET", &format!("/jobs/{id2}/result.kv"), None);
    assert_eq!(sk, 200);
    assert_eq!(kv_before, kv_after);

    drain_router(raddr, hr);
    drain_backend(b, hb);
}

#[test]
fn hints_land_on_the_predictions_hash_owner_and_warm_its_spec_lane() {
    // Backends speculate only on router hints (their own predictor is
    // off), so every speculative start below is router-attributed.
    let spec_cfg = || {
        Some(SpecConfig {
            fanout: 0,
            queue_cap: 8,
            inflight_max: 2,
            ttl: Duration::from_secs(120),
        })
    };
    let mk = |store| ServeConfig {
        spec: spec_cfg(),
        ..backend_cfg(store)
    };
    let store = scratch("hints-store");
    let (a, ha) = start_backend(mk(Some(store.clone())));
    let (b, hb) = start_backend(mk(Some(store)));
    let addrs = vec![a.to_string(), b.to_string()];
    let mut cfg = router_cfg(addrs.clone());
    cfg.hint_fanout = 1;
    let (state, raddr, hr) = start_router(cfg);

    // Replicate the router's prediction with a reference predictor: same
    // client key ("127.0.0.1"), same fanout, same single submission.
    let submitted =
        "{\"bench\": \"164.gzip\", \"scale\": 1, \"cfg\": {\"side_entries\": 8}}".to_string();
    let spec = JobSpec::parse(&submitted).unwrap();
    let predicted = Predictor::new(1).predict("127.0.0.1", &spec);
    assert_eq!(predicted.len(), 1);
    let p = &predicted[0];
    let ring = Ring::new(&addrs).unwrap();
    let p_owner = ring.candidates(&p.dedup_key())[0];
    let (owner_addr, other_addr) = if p_owner == 0 { (a, b) } else { (b, a) };

    let (s, rec) = request(raddr, "POST", "/jobs", Some(&submitted));
    assert_eq!(s, 200, "{rec}");

    // The detached hint thread posts to the prediction's hash owner.
    poll_until("hint accepted", || {
        state.hints_accepted.load(Ordering::SeqCst) >= 1
    });
    assert_eq!(state.hints_sent.load(Ordering::SeqCst), 1);
    let spec_started = |addr: SocketAddr| {
        let (s, stats) = request(addr, "GET", "/stats", None);
        assert_eq!(s, 200);
        u64_at(&json::parse(&stats).unwrap(), &["spec", "started"])
    };
    poll_until("owner speculation started", || spec_started(owner_addr) >= 1);
    assert_eq!(
        spec_started(other_addr),
        0,
        "only the prediction's hash owner speculates"
    );
    // Let the prefetch finish unclaimed (an unclaimed completion lands in
    // the backend's source="spec" duration histogram) so the demand below
    // hits a parked ready result, not an in-flight job.
    poll_until("speculation completed unclaimed", || {
        let (s, page) = request(owner_addr, "GET", "/metrics", None);
        assert_eq!(s, 200);
        page.lines().any(|l| {
            l.starts_with("wec_serve_job_duration_ms_count{source=\"spec\"}")
                && !l.ends_with(" 0")
        })
    });

    // The predicted demand job arrives warm from the speculative lane —
    // and the router routes it to the very backend that pre-computed it.
    let (s, rec) = request(raddr, "POST", "/jobs", Some(&p.to_json()));
    assert_eq!(s, 200, "{rec}");
    let id = u64_at(&json::parse(&rec).unwrap(), &["id"]);
    assert_eq!(id >> LOCAL_ID_BITS, p_owner as u64 + 1);
    let rec = poll_terminal(raddr, id);
    assert_eq!(rec.get("source").unwrap().as_str(), Some("spec"), "{rec:?}");

    // The cluster document carries the speculation ledger and conserves.
    // (The second submit's hint thread is detached — wait it out.)
    poll_until("second hint sent", || {
        state.hints_sent.load(Ordering::SeqCst) >= 2
    });
    let (ss, stats) = request(raddr, "GET", "/stats", None);
    assert_eq!(ss, 200);
    schema::validate_router_stats_json(&stats).unwrap();
    let v = json::parse(&stats).unwrap();
    assert_eq!(u64_at(&v, &["cluster", "cache", "spec_hits"]), 1, "{stats}");
    assert_eq!(u64_at(&v, &["router", "hints_sent"]), 2, "one per demand submit");

    drain_router(raddr, hr);
    drain_backend(a, ha);
    drain_backend(b, hb);
}

#[test]
fn every_scrape_conserves_and_drain_writes_validated_router_json() {
    let logs = scratch("conserve-logs");
    let store = scratch("conserve-store");
    let mk = |store| ServeConfig {
        spec: Some(SpecConfig::default()),
        ..backend_cfg(store)
    };
    let (a, ha) = start_backend(mk(Some(store.clone())));
    let (b, hb) = start_backend(mk(Some(store)));
    let addrs = vec![a.to_string(), b.to_string()];
    let mut cfg = router_cfg(addrs);
    cfg.log_dir = Some(logs.clone());
    cfg.hint_fanout = 2;
    let (_state, raddr, hr) = start_router(cfg);

    // Walk the sweep's side axis with self-speculating backends churning
    // underneath; every interleaved scrape must conserve (the validator
    // enforces cluster == sum of embedded ledgers, spec block included).
    let mut ids = Vec::new();
    for side in [2u8, 4, 8, 16] {
        let body = format!(
            "{{\"bench\": \"164.gzip\", \"scale\": 1, \"cfg\": {{\"side_entries\": {side}}}}}"
        );
        let (s, rec) = request(raddr, "POST", "/jobs", Some(&body));
        assert_eq!(s, 200, "{rec}");
        ids.push(u64_at(&json::parse(&rec).unwrap(), &["id"]));

        let (ss, stats) = request(raddr, "GET", "/stats", None);
        assert_eq!(ss, 200);
        let report = schema::validate_router_stats_json(&stats).unwrap();
        assert_eq!(report.scraped, 2, "{stats}");

        // The Prometheus page holds the same invariant in one snapshot.
        let (sm, page) = request(raddr, "GET", "/metrics", None);
        assert_eq!(sm, 200);
        let series_sum = |name: &str| -> u64 {
            page.lines()
                .filter(|l| l.starts_with(name) && !l.starts_with('#'))
                .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
                .sum()
        };
        assert_eq!(
            series_sum("wec_router_backend_completed_total"),
            series_sum("wec_router_jobs_completed_total"),
            "{page}"
        );
        let started = series_sum("wec_router_spec_started_total");
        let accounted = series_sum("wec_router_spec_hit_total")
            + series_sum("wec_router_spec_waste_total")
            + series_sum("wec_router_spec_cancelled_total")
            + series_sum("wec_router_spec_pending_total");
        assert_eq!(started, accounted, "{page}");
    }
    for id in ids {
        poll_terminal(raddr, id);
    }

    drain_router(raddr, hr);
    let text = std::fs::read_to_string(logs.join("router.json")).unwrap();
    let report = schema::validate_router_stats_json(&text).unwrap();
    assert_eq!(report.backends, 2);
    assert_eq!(report.scraped, 2, "backends outlive the router's drain");
    assert!(report.completed >= 4, "{text}");
    let v = json::parse(&text).unwrap();
    assert_eq!(v.get("draining").unwrap().as_bool(), Some(true));
    drain_backend(a, ha);
    drain_backend(b, hb);
}

#[test]
fn malformed_and_unroutable_requests_never_reach_a_backend() {
    let (fake, posts) = fake_backend(|_| {
        "HTTP/1.1 500 Internal Server Error\r\nContent-Length: 0\r\n\r\n".to_string()
    });
    let (_state, raddr, hr) = start_router(router_cfg(vec![fake]));

    // Spec validation happens at the router: garbage gets a 400 here and
    // the backend never sees a byte of it.
    for body in ["{not json", "{\"bench\": \"999.nope\"}", "{\"bench\": \"181.mcf\", \"oops\": 1}"] {
        let (s, _) = request(raddr, "POST", "/jobs", Some(body));
        assert_eq!(s, 400, "{body}");
    }
    // Ids no backend of this ring could have issued: a raw local id
    // (backend index 0) and an index beyond the ring.
    let (s, _) = request(raddr, "GET", "/jobs/12345", None);
    assert_eq!(s, 404);
    let (s, _) = request(raddr, "GET", &format!("/jobs/{}", 9u64 << LOCAL_ID_BITS), None);
    assert_eq!(s, 404);
    let (s, _) = request(raddr, "GET", "/jobs/notanid", None);
    assert_eq!(s, 404);
    let (s, _) = request(raddr, "DELETE", "/stats", None);
    assert_eq!(s, 405);
    assert_eq!(posts.load(Ordering::SeqCst), 0);

    let (s, body) = request(raddr, "GET", "/healthz", None);
    assert_eq!((s, body.as_str()), (200, "{\"ok\":true,\"draining\":false}"));
    drain_router(raddr, hr);
}
