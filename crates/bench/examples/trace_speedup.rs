//! Measure the trace-replay speedup recorded in `BENCH_trace.json`: the
//! wall-clock of the 48-point WEC geometry sweep done the old way (one
//! cold full-timing simulation per point, single-threaded so the
//! comparison is work-for-work) against capture once + replay 48 times.
//!
//! ```text
//! cargo run --release -p wec-bench --example trace_speedup [-- --scale N]
//! ```

use std::time::Instant;

use wec_bench::tracerun::{capture_key, sweep_keys};
use wec_trace::{capture_run, replay, CaptureMeta};
use wec_workloads::{run_and_verify, Bench, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale { units: 1 };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = Scale {
                    units: it.next().and_then(|s| s.parse().ok()).expect("--scale N"),
                }
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    let keys = sweep_keys();
    let base = capture_key();
    eprintln!(
        "sweep: {} benchmarks x {} configurations at scale {}",
        Bench::ALL.len(),
        keys.len(),
        scale.units
    );

    // The old way: every sweep point is a cold full-timing simulation.
    let t_full = Instant::now();
    let mut full_cycles = 0u64;
    for bench in Bench::ALL {
        let w = bench.build(scale);
        for key in &keys {
            full_cycles += run_and_verify(&w, key.build())
                .unwrap_or_else(|e| panic!("{} under {}: {e}", w.name, key.label()))
                .cycles;
        }
    }
    let full_s = t_full.elapsed().as_secs_f64();
    eprintln!("full-timing sweep: {full_s:.2}s ({full_cycles} simulated cycles)");

    // The trace way: one full-timing capture per benchmark, then replay
    // drives only the cache hierarchy for every sweep point.
    let t_trace = Instant::now();
    let mut capture_s = 0.0;
    let mut records = 0u64;
    let mut payload = 0u64;
    for bench in Bench::ALL {
        let w = bench.build(scale);
        let t_cap = Instant::now();
        let meta = CaptureMeta {
            bench: w.name.to_string(),
            scale_units: scale.units,
            cfg_label: base.label(),
        };
        let (_, trace) =
            capture_run(&w, base.build(), &meta).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        capture_s += t_cap.elapsed().as_secs_f64();
        records += trace.header.total_records;
        payload += trace.encoded_bytes();
        for key in &keys {
            replay(&trace, &key.build())
                .unwrap_or_else(|e| panic!("{} replay at {}: {e}", w.name, key.label()));
        }
    }
    let trace_s = t_trace.elapsed().as_secs_f64();
    let replay_s = trace_s - capture_s;
    let replayed = records * keys.len() as u64;
    eprintln!(
        "trace sweep: {trace_s:.2}s total ({capture_s:.2}s capture, {replay_s:.2}s replay of {replayed} records)"
    );
    println!(
        "{{\"scale_units\": {}, \"points\": {}, \"full_timing_sweep_s\": {full_s:.2}, \
         \"trace_sweep_s\": {trace_s:.2}, \"capture_s\": {capture_s:.2}, \
         \"replay_s\": {replay_s:.2}, \"speedup\": {:.1}, \"records\": {records}, \
         \"payload_bytes\": {payload}, \"bytes_per_record\": {:.3}, \
         \"replay_records_per_s\": {:.0}}}",
        scale.units,
        Bench::ALL.len() * keys.len(),
        full_s / trace_s,
        payload as f64 / records.max(1) as f64,
        replayed as f64 / replay_s.max(1e-9),
    );
}
