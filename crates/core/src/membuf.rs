//! The per-thread speculative memory buffer (paper §2, §2.2).
//!
//! During a parallel region every store a thread commits lands here instead
//! of the cache; the buffer is drained to architectural memory only in the
//! thread's write-back stage, in original program order — which is how the
//! superthreaded model avoids speculative memory state and why wrong threads
//! can never alter memory.
//!
//! The buffer also realizes run-time data-dependence checking: upstream
//! threads *announce* their target-store addresses in the TSAG stage and
//! *release* the values when the stores execute; a downstream load that
//! overlaps an announced-but-unreleased entry must wait.
//!
//! ## Representation
//!
//! Buffered bytes live in [`WordStore`]s: open-addressed hash tables keyed
//! by 8-byte-aligned word address, each entry carrying a byte-presence mask
//! and the byte lanes themselves.  A load or store touches at most two
//! words, so `check_load`/`record_store` are a handful of table probes
//! instead of the per-byte B-tree walks they replace, and `clear` is an
//! epoch bump rather than a tree teardown.  Entries are only ever added
//! within an epoch (stores are never undone — a squashed thread drops the
//! whole buffer), which is what makes stale-epoch slots safe to treat as
//! empty.

use wec_common::ids::{Addr, ThreadId};

/// What a load sees when it consults the buffer chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadCheck {
    /// Every byte resolved from buffers: the load needs no cache access.
    Value(u64),
    /// Some bytes come from memory: merge `value` using `buffered_mask`
    /// (bit i set ⇒ byte i of the result comes from the buffer).
    Partial { value: u64, buffered_mask: u8 },
    /// No overlap with any buffered byte.
    Miss,
    /// Overlaps an announced target store whose value has not arrived.
    Wait,
}

/// One slot of a [`WordStore`]: a word address, the epoch it was written
/// in, which byte lanes are present, and their values (absent lanes are
/// kept zero so word-level mask algebra needs no per-byte cleanup).
#[derive(Clone, Copy, Debug)]
struct WordSlot {
    word: u64,
    epoch: u64,
    mask: u8,
    value: u64,
}

const EMPTY_SLOT: WordSlot = WordSlot {
    word: 0,
    epoch: 0,
    mask: 0,
    value: 0,
};

/// Byte-presence map at word granularity: an open-addressed, epoch-tagged
/// hash table from 8-byte-aligned addresses to (byte mask, byte lanes).
///
/// Lanes not covered by `mask` are zero in `value`.  `clear` bumps the
/// epoch (O(1)); slots from older epochs read as empty.  The table only
/// grows; for the simulator's buffers (≤ a few hundred words per thread)
/// it stays at a few KB.
#[derive(Clone, Debug)]
pub struct WordStore {
    /// Power-of-two table; `epoch == self.epoch` marks a live slot.
    slots: Vec<WordSlot>,
    /// Current generation; bumped by [`clear`](Self::clear). Starts at 1 so
    /// zero-initialized slots are never live.
    epoch: u64,
    /// Live entries (distinct words).
    words: usize,
    /// Live bytes (sum of mask popcounts).
    bytes: usize,
}

impl Default for WordStore {
    fn default() -> Self {
        WordStore {
            slots: Vec::new(),
            epoch: 1,
            words: 0,
            bytes: 0,
        }
    }
}

/// Spread a byte-presence mask into a per-lane byte mask
/// (bit i → byte i = 0xff), via a compile-time table.
#[inline]
fn spread(mask: u8) -> u64 {
    const TABLE: [u64; 256] = {
        let mut t = [0u64; 256];
        let mut m = 0usize;
        while m < 256 {
            let mut lane = 0;
            while lane < 8 {
                if m & (1 << lane) != 0 {
                    t[m] |= 0xff << (8 * lane);
                }
                lane += 1;
            }
            m += 1;
        }
        t
    };
    TABLE[mask as usize]
}

impl WordStore {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn hash(word: u64) -> u64 {
        // splitmix64 finalizer: full-avalanche, cheap.
        let mut z = word.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 27;
        z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Distinct words present.
    pub fn word_count(&self) -> usize {
        self.words
    }

    /// Bytes present.
    pub fn byte_count(&self) -> usize {
        self.bytes
    }

    /// Drop every entry (O(1): stale epochs read as empty).
    pub fn clear(&mut self) {
        self.epoch += 1;
        self.words = 0;
        self.bytes = 0;
    }

    /// The (mask, lanes) entry for an 8-byte-aligned word, if any byte of
    /// it is present.
    #[inline]
    pub fn get(&self, word: u64) -> Option<(u8, u64)> {
        debug_assert_eq!(word & 7, 0);
        if self.words == 0 {
            return None;
        }
        let cap_mask = self.slots.len() - 1;
        let mut i = (Self::hash(word) as usize) & cap_mask;
        loop {
            let s = &self.slots[i];
            if s.epoch != self.epoch {
                return None; // empty (or stale) slot terminates the probe
            }
            if s.word == word {
                return Some((s.mask, s.value));
            }
            i = (i + 1) & cap_mask;
        }
    }

    /// Merge bytes into a word: lanes set in `mask` take the corresponding
    /// bytes of `value`; other lanes keep their current contents.
    pub fn write(&mut self, word: u64, mask: u8, value: u64) {
        debug_assert_eq!(word & 7, 0);
        if mask == 0 {
            return;
        }
        if self.slots.is_empty() || self.words * 2 >= self.slots.len() {
            self.grow();
        }
        let lanes = spread(mask);
        let cap_mask = self.slots.len() - 1;
        let mut i = (Self::hash(word) as usize) & cap_mask;
        loop {
            let s = &mut self.slots[i];
            if s.epoch != self.epoch {
                *s = WordSlot {
                    word,
                    epoch: self.epoch,
                    mask,
                    value: value & lanes,
                };
                self.words += 1;
                self.bytes += mask.count_ones() as usize;
                return;
            }
            if s.word == word {
                self.bytes += (mask & !s.mask).count_ones() as usize;
                s.mask |= mask;
                s.value = (s.value & !lanes) | (value & lanes);
                return;
            }
            i = (i + 1) & cap_mask;
        }
    }

    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(16);
        let old = std::mem::replace(&mut self.slots, vec![EMPTY_SLOT; new_cap]);
        let cap_mask = new_cap - 1;
        for s in old {
            if s.epoch != self.epoch {
                continue;
            }
            let mut i = (Self::hash(s.word) as usize) & cap_mask;
            while self.slots[i].epoch == self.epoch {
                i = (i + 1) & cap_mask;
            }
            self.slots[i] = s;
        }
    }

    /// All live entries as `(word, mask, lanes)`, in address order.
    pub fn entries_sorted(&self) -> Vec<(u64, u8, u64)> {
        let mut out: Vec<(u64, u8, u64)> = self
            .slots
            .iter()
            .filter(|s| s.epoch == self.epoch)
            .map(|s| (s.word, s.mask, s.value))
            .collect();
        out.sort_unstable_by_key(|&(w, _, _)| w);
        out
    }

    /// The presence mask and value of `bytes` bytes starting at `addr`,
    /// aligned to the load (bit/byte i of the result = `addr + i`).  Spans
    /// at most two words.
    #[inline]
    pub fn gather(&self, addr: u64, bytes: u64) -> (u8, u64) {
        let off = (addr & 7) as u32;
        let word = addr & !7;
        let want = ((1u32 << bytes) - 1) as u8;
        let mut mask = 0u8;
        let mut value = 0u64;
        if let Some((m, v)) = self.get(word) {
            mask = (m >> off) & want;
            value = (v >> (8 * off)) & spread(mask);
        }
        if off as u64 + bytes > 8 {
            if let Some((m, v)) = self.get(word + 8) {
                let shift = 8 - off; // lanes of the second word land here
                let hi_mask = (m << shift) & want;
                mask |= hi_mask;
                value |= (v << (8 * shift)) & spread(hi_mask);
            }
        }
        (mask, value)
    }

    /// Store `bytes` bytes of `value` at `addr` (splits across the word
    /// boundary if needed).
    #[inline]
    pub fn store(&mut self, addr: u64, bytes: u64, value: u64) {
        let off = (addr & 7) as u32;
        let word = addr & !7;
        let want = ((1u32 << bytes) - 1) as u8;
        self.write(word, want << off, value << (8 * off));
        if off as u64 + bytes > 8 {
            let shift = 8 - off;
            self.write(word + 8, want >> shift, value >> (8 * shift));
        }
    }
}

/// One thread's speculative memory buffer.
///
/// ```
/// use wec_common::ids::{Addr, ThreadId};
/// use wec_core::membuf::{LoadCheck, MemBuffer};
///
/// let mut buf = MemBuffer::new();
/// // An upstream thread announced a target store here (TSAG stage):
/// buf.announce_upstream(Addr(0x100), ThreadId(3));
/// // …so a load must wait (run-time dependence checking, §2.2):
/// assert_eq!(buf.check_load(Addr(0x100), 8), LoadCheck::Wait);
/// // When the upstream store executes, the value is released:
/// buf.release_upstream(Addr(0x100), 8, 42, ThreadId(3));
/// assert_eq!(buf.check_load(Addr(0x100), 8), LoadCheck::Value(42));
/// ```
#[derive(Clone, Debug, Default)]
pub struct MemBuffer {
    /// Bytes written by this thread's committed stores.
    own: WordStore,
    /// Bytes released by upstream target stores.
    released: WordStore,
    /// Announced (8-byte) target-store ranges from upstream threads that
    /// have not been released yet, with the announcing thread.
    announced: Vec<(Addr, ThreadId)>,
    /// This thread's own announced target-store addresses (a store matching
    /// one of these must be forwarded downstream when it executes).
    own_announced: Vec<Addr>,
    /// High-water mark of buffered store bytes (capacity accounting: the
    /// paper's buffer is 128 entries; we record pressure rather than stall).
    pub peak_bytes: usize,
}

/// Target stores are announced at 8-byte granularity.
pub const ANNOUNCE_BYTES: u64 = 8;

impl MemBuffer {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a committed store by this thread.
    pub fn record_store(&mut self, addr: Addr, bytes: u64, value: u64) {
        self.own.store(addr.0, bytes, value);
        self.peak_bytes = self.peak_bytes.max(self.own.byte_count());
    }

    /// Does this store match one of the thread's own target-store
    /// announcements (and therefore needs forwarding downstream)?
    pub fn is_own_target_store(&self, addr: Addr, bytes: u64) -> bool {
        self.own_announced
            .iter()
            .any(|a| a.0 < addr.0 + bytes && addr.0 < a.0 + ANNOUNCE_BYTES)
    }

    /// Register one of this thread's own TSAG announcements.
    pub fn announce_own(&mut self, addr: Addr) {
        self.own_announced.push(addr);
    }

    /// Register an upstream announcement.
    pub fn announce_upstream(&mut self, addr: Addr, from: ThreadId) {
        if !self.announced.iter().any(|&(a, t)| a == addr && t == from) {
            self.announced.push((addr, from));
        }
    }

    /// An upstream target store released its value.
    pub fn release_upstream(&mut self, addr: Addr, bytes: u64, value: u64, from: ThreadId) {
        self.announced.retain(|&(a, t)| !(a == addr && t == from));
        self.released.store(addr.0, bytes, value);
    }

    /// Drop all state from a given upstream thread (it was killed or marked
    /// wrong): pending waits on it must not deadlock the consumer.
    pub fn void_upstream(&mut self, from: ThreadId) {
        self.announced.retain(|&(_, t)| t != from);
    }

    /// Resolve a load against this buffer (own bytes override released
    /// upstream bytes, which override memory).
    pub fn check_load(&self, addr: Addr, bytes: u64) -> LoadCheck {
        debug_assert!((1..=8).contains(&bytes));
        let want = ((1u32 << bytes) - 1) as u8;
        let mut own_gathered: Option<(u8, u64)> = None;
        // Unreleased announcement overlapping the load?
        for &(a, _) in &self.announced {
            if a.0 < addr.0 + bytes && addr.0 < a.0 + ANNOUNCE_BYTES {
                // Own stores may already cover the overlap entirely, in
                // which case the thread reads its own data, not upstream's.
                let gathered = self.own.gather(addr.0, bytes);
                if gathered.0 != want {
                    return LoadCheck::Wait;
                }
                own_gathered = Some(gathered);
                break;
            }
        }
        let (own_mask, own_value) = own_gathered.unwrap_or_else(|| self.own.gather(addr.0, bytes));
        let (mask, value) = if own_mask == want {
            (own_mask, own_value)
        } else {
            let (rel_mask, rel_value) = self.released.gather(addr.0, bytes);
            // Own bytes override released bytes.
            let rel_only = rel_mask & !own_mask;
            (
                own_mask | rel_mask,
                own_value | (rel_value & spread(rel_only)),
            )
        };
        if mask == 0 {
            LoadCheck::Miss
        } else if mask == want {
            LoadCheck::Value(value)
        } else {
            LoadCheck::Partial {
                value,
                buffered_mask: mask,
            }
        }
    }

    /// Drain this thread's own stores as (8-byte-aligned word address,
    /// byte mask, value) triples in address order — the write-back stage.
    pub fn drain_own(&self) -> Vec<(Addr, u8, u64)> {
        self.own
            .entries_sorted()
            .into_iter()
            .map(|(w, mask, value)| (Addr(w), mask, value))
            .collect()
    }

    /// Number of distinct 8-byte words this thread has written (write-back
    /// cost accounting).
    pub fn own_word_count(&self) -> usize {
        self.own.word_count()
    }

    pub fn clear(&mut self) {
        self.own.clear();
        self.released.clear();
        self.announced.clear();
        self.own_announced.clear();
    }
}

/// Apply a drained word to memory-like byte storage via a closure.
/// Helper for the write-back stage: calls `write(addr, byte)` for each
/// masked byte lane.
pub fn apply_word(addr: Addr, mask: u8, value: u64, mut write: impl FnMut(Addr, u8)) {
    for lane in 0..8u32 {
        if mask & (1 << lane) != 0 {
            write(addr + lane as u64, (value >> (8 * lane)) as u8);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn own_store_then_load_hits() {
        let mut b = MemBuffer::new();
        b.record_store(Addr(0x100), 8, 0xAABB_CCDD_EEFF_1122);
        assert_eq!(
            b.check_load(Addr(0x100), 8),
            LoadCheck::Value(0xAABB_CCDD_EEFF_1122)
        );
        // Sub-word read of the buffered data.
        assert_eq!(b.check_load(Addr(0x104), 4), LoadCheck::Value(0xAABB_CCDD));
    }

    #[test]
    fn later_store_overrides_earlier() {
        let mut b = MemBuffer::new();
        b.record_store(Addr(0x100), 8, 1);
        b.record_store(Addr(0x100), 1, 0xff);
        assert_eq!(b.check_load(Addr(0x100), 8), LoadCheck::Value(0xff));
    }

    #[test]
    fn partial_coverage_reports_mask() {
        let mut b = MemBuffer::new();
        b.record_store(Addr(0x104), 4, 0xDEAD_BEEF);
        match b.check_load(Addr(0x100), 8) {
            LoadCheck::Partial {
                value,
                buffered_mask,
            } => {
                assert_eq!(buffered_mask, 0b1111_0000);
                assert_eq!(value, 0xDEAD_BEEF_0000_0000);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unaligned_store_spans_two_words() {
        let mut b = MemBuffer::new();
        b.record_store(Addr(0x105), 8, 0x8877_6655_4433_2211);
        assert_eq!(
            b.check_load(Addr(0x105), 8),
            LoadCheck::Value(0x8877_6655_4433_2211)
        );
        // Reads within each half see the right lanes.
        assert_eq!(b.check_load(Addr(0x105), 2), LoadCheck::Value(0x2211));
        assert_eq!(b.check_load(Addr(0x108), 4), LoadCheck::Value(0x7766_5544));
        assert_eq!(b.own_word_count(), 2);
    }

    #[test]
    fn miss_when_untouched() {
        let b = MemBuffer::new();
        assert_eq!(b.check_load(Addr(0x100), 8), LoadCheck::Miss);
    }

    #[test]
    fn announced_unreleased_forces_wait_then_value_after_release() {
        let mut b = MemBuffer::new();
        let up = ThreadId(3);
        b.announce_upstream(Addr(0x200), up);
        assert_eq!(b.check_load(Addr(0x200), 8), LoadCheck::Wait);
        // Overlap at any byte also waits.
        assert_eq!(b.check_load(Addr(0x204), 4), LoadCheck::Wait);
        b.release_upstream(Addr(0x200), 8, 777, up);
        assert_eq!(b.check_load(Addr(0x200), 8), LoadCheck::Value(777));
    }

    #[test]
    fn own_store_shadows_upstream_announcement() {
        let mut b = MemBuffer::new();
        b.announce_upstream(Addr(0x200), ThreadId(1));
        b.record_store(Addr(0x200), 8, 5);
        assert_eq!(b.check_load(Addr(0x200), 8), LoadCheck::Value(5));
    }

    #[test]
    fn void_upstream_unblocks_waiters() {
        let mut b = MemBuffer::new();
        b.announce_upstream(Addr(0x300), ThreadId(9));
        assert_eq!(b.check_load(Addr(0x300), 8), LoadCheck::Wait);
        b.void_upstream(ThreadId(9));
        assert_eq!(b.check_load(Addr(0x300), 8), LoadCheck::Miss);
    }

    #[test]
    fn own_target_store_detection() {
        let mut b = MemBuffer::new();
        b.announce_own(Addr(0x400));
        assert!(b.is_own_target_store(Addr(0x400), 8));
        assert!(b.is_own_target_store(Addr(0x404), 4));
        assert!(!b.is_own_target_store(Addr(0x408), 8));
    }

    #[test]
    fn drain_coalesces_into_words() {
        let mut b = MemBuffer::new();
        b.record_store(Addr(0x100), 8, u64::MAX);
        b.record_store(Addr(0x109), 1, 0x42);
        let drained = b.drain_own();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0], (Addr(0x100), 0xff, u64::MAX));
        assert_eq!(drained[1], (Addr(0x108), 0b10, 0x42 << 8));
        assert_eq!(b.own_word_count(), 2);
    }

    #[test]
    fn apply_word_writes_masked_lanes_only() {
        let mut bytes = [0u8; 16];
        apply_word(Addr(0), 0b101, 0x00AA_00BB, |a, v| bytes[a.0 as usize] = v);
        assert_eq!(bytes[0], 0xBB);
        assert_eq!(bytes[1], 0);
        assert_eq!(bytes[2], 0xAA);
    }

    #[test]
    fn released_value_merges_with_memory_bytes() {
        let mut b = MemBuffer::new();
        b.release_upstream(Addr(0x500), 8, 0x1111_1111_1111_1111, ThreadId(0));
        match b.check_load(Addr(0x4FC), 8) {
            LoadCheck::Partial { buffered_mask, .. } => {
                assert_eq!(buffered_mask, 0b1111_0000)
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn clear_is_a_fresh_buffer() {
        let mut b = MemBuffer::new();
        b.record_store(Addr(0x100), 8, 1);
        b.announce_upstream(Addr(0x200), ThreadId(1));
        b.clear();
        assert_eq!(b.check_load(Addr(0x100), 8), LoadCheck::Miss);
        assert_eq!(b.check_load(Addr(0x200), 8), LoadCheck::Miss);
        assert_eq!(b.own_word_count(), 0);
        assert!(b.drain_own().is_empty());
        // The table is reusable after the epoch bump.
        b.record_store(Addr(0x100), 4, 0xABCD);
        assert_eq!(b.check_load(Addr(0x100), 4), LoadCheck::Value(0xABCD));
    }

    #[test]
    fn wordstore_grows_past_initial_capacity() {
        let mut s = WordStore::new();
        for i in 0..200u64 {
            s.store(i * 8, 8, i);
        }
        assert_eq!(s.word_count(), 200);
        assert_eq!(s.byte_count(), 1600);
        for i in 0..200u64 {
            assert_eq!(s.get(i * 8), Some((0xff, i)));
        }
        let entries = s.entries_sorted();
        assert_eq!(entries.len(), 200);
        assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn wordstore_masks_keep_absent_lanes_zero() {
        let mut s = WordStore::new();
        s.write(0x100, 0b0000_0110, u64::MAX);
        let (mask, value) = s.get(0x100).unwrap();
        assert_eq!(mask, 0b0000_0110);
        assert_eq!(value, 0x0000_0000_00ff_ff00);
        // Merging more lanes preserves the old ones.
        s.write(0x100, 0b1000_0001, 0xAA00_0000_0000_00BB);
        assert_eq!(s.get(0x100), Some((0b1000_0111, 0xaa00_0000_00ff_ffbb)));
    }
}
