//! The sharded serving tier: a reverse proxy fronting N `wec_serve`
//! backends.
//!
//! `wec_router` shards jobs across a fleet of serve daemons by rendezvous
//! hashing of [`wec_serve::JobSpec::dedup_key`] — the same key every
//! backend dedups and memoizes on — so identical submissions land on the
//! same node no matter which client sent them, and cross-node dedup holds
//! *by construction*: the cluster executes each distinct job at most once
//! even though the backends never talk to each other.  All backends share
//! one persistent result store, so a re-sharded job (its owner died or
//! drained) is answered from disk instead of recomputed.
//!
//! Same house style as the serve daemon it fronts: std-only, no async
//! runtime, no HTTP library — hand-rolled framing ([`wec_serve::http`] on
//! the inbound side, [`client`] on the outbound side), a nonblocking
//! listener polled every 20 ms, one short-lived thread per connection.
//!
//! * [`ring`] — the backend table: rendezvous hashing, health state
//!   (healthy / draining / dead), and the health-check pass;
//! * [`client`] — the outbound HTTP/1.1 client: one request per
//!   connection, fixed-length and chunked response bodies, plus the
//!   verbatim byte relay behind the proxied `/jobs/<id>/events` stream;
//! * [`state`] — shared counters, the composite job-id scheme
//!   (`backend << 48 | local`), live backend scrapes, and the
//!   `wec-router-stats-v1` / Prometheus renderers whose cluster roll-up
//!   conserves against the embedded backend ledgers on every scrape;
//! * [`server`] — the accept loop, routing, bounded retry with
//!   re-sharding around dead or draining backends, speculation hint
//!   fan-out, and graceful drain (writes `router.json`).
//!
//! Binary: `wec_router`.

pub mod client;
pub mod ring;
pub mod server;
pub mod state;

pub use client::Response;
pub use ring::{Backend, BackendState, Ring};
pub use server::Router;
pub use state::{RouterConfig, RouterState};

/// Lock a mutex, recovering the guard if a previous holder panicked — a
/// connection thread's panic must not poison shared routing state for the
/// rest of the proxy's life.
pub(crate) fn lock<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}
