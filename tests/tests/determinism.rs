//! Determinism: equal seed + configuration ⇒ bit-identical results and
//! cycle counts, including when runs happen on different host threads.

use wec_bench::runner::{CfgKey, Runner, Suite};
use wec_core::config::ProcPreset;
use wec_workloads::{run_and_verify, Bench, Scale};

#[test]
fn repeated_runs_are_cycle_identical() {
    let w = Bench::Mcf.build(Scale::SMOKE);
    let a = run_and_verify(&w, ProcPreset::WthWpWec.machine(8)).unwrap();
    let b = run_and_verify(&w, ProcPreset::WthWpWec.machine(8)).unwrap();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.checksum, b.checksum);
    assert_eq!(a.metrics.l1d.wrong_accesses, b.metrics.l1d.wrong_accesses);
    assert_eq!(a.metrics.threads_marked_wrong, b.metrics.threads_marked_wrong);
}

#[test]
fn workload_builds_are_reproducible() {
    let a = Bench::Gzip.build(Scale::SMOKE);
    let b = Bench::Gzip.build(Scale::SMOKE);
    assert_eq!(a.expected_check, b.expected_check);
    assert_eq!(a.program.text, b.program.text);
    assert_eq!(a.program.data.checksum(), b.program.data.checksum());
}

#[test]
fn parallel_host_execution_matches_serial() {
    let suite = Suite::build(Scale::SMOKE);
    let key = CfgKey::paper(ProcPreset::WthWpWec, 4);

    // Warm in parallel across host threads…
    let parallel = Runner::new(&suite);
    let points: Vec<(usize, CfgKey)> = (0..suite.workloads.len()).map(|i| (i, key)).collect();
    parallel.warm(&points);

    // …and compare against strictly serial runs.
    let serial = Runner::new(&suite);
    for (i, _) in points.iter().enumerate() {
        let a = parallel.metrics(i, key);
        let b = serial.metrics(i, key);
        assert_eq!(a.cycles, b.cycles, "{}", suite.workloads[i].name);
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.l1d.demand_misses, b.l1d.demand_misses);
    }
}
