//! End-to-end daemon tests: a live server on an ephemeral port, driven
//! over real sockets, running real scale-1 simulations.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use wec_serve::{ServeConfig, Server, ServerState};
use wec_telemetry::json::{self, Json};
use wec_telemetry::schema;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wec-serve-e2e-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

type ServerHandle = (
    Arc<ServerState>,
    SocketAddr,
    std::thread::JoinHandle<std::io::Result<()>>,
);

fn start(cfg: ServeConfig) -> ServerHandle {
    let server = Server::bind("127.0.0.1:0", cfg).unwrap();
    let state = server.state();
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run());
    (state, addr, handle)
}

/// Write raw bytes, half-close, read the whole response.  Writes and the
/// final read are best-effort: a server that rejects early (oversized
/// request) may close the connection while the client is still sending.
fn send_raw(addr: SocketAddr, raw: &[u8]) -> String {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_nodelay(true).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    let _ = s.write_all(raw);
    let _ = s.shutdown(std::net::Shutdown::Write);
    let mut out = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match s.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => out.extend_from_slice(&buf[..n]),
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn dechunk(body: &str) -> String {
    let mut out = String::new();
    let mut rest = body;
    loop {
        let (len_line, after) = rest.split_once("\r\n").expect("chunk size line");
        let len = usize::from_str_radix(len_line.trim(), 16).expect("hex chunk size");
        if len == 0 {
            break;
        }
        out.push_str(&after[..len]);
        rest = &after[len + 2..];
    }
    out
}

fn parse_response(text: &str) -> (u16, String) {
    let (head, body) = text.split_once("\r\n\r\n").expect("no header terminator");
    let status = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    if head
        .to_ascii_lowercase()
        .contains("transfer-encoding: chunked")
    {
        (status, dechunk(body))
    } else {
        (status, body.to_string())
    }
}

fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let mut raw = format!("{method} {path} HTTP/1.1\r\nHost: e2e\r\nConnection: close\r\n");
    if let Some(b) = body {
        raw.push_str(&format!(
            "Content-Type: application/json\r\nContent-Length: {}\r\n",
            b.len()
        ));
    }
    raw.push_str("\r\n");
    if let Some(b) = body {
        raw.push_str(b);
    }
    parse_response(&send_raw(addr, raw.as_bytes()))
}

fn poll_terminal(addr: SocketAddr, id: u64) -> Json {
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let (status, body) = request(addr, "GET", &format!("/jobs/{id}"), None);
        assert_eq!(status, 200, "{body}");
        let v = json::parse(&body).unwrap();
        let state = v.get("state").and_then(Json::as_str).unwrap().to_string();
        if state == "done" || state == "failed" {
            return v;
        }
        assert!(Instant::now() < deadline, "job {id} stuck in {state}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn u64_at(v: &Json, path: &[&str]) -> u64 {
    let mut cur = v;
    for p in path {
        cur = cur.get(p).unwrap_or_else(|| panic!("missing {p}"));
    }
    cur.as_u64().unwrap()
}

#[test]
fn duplicate_submissions_share_one_execution_and_results_match() {
    let (state, addr, handle) = start(ServeConfig {
        workers: 2,
        queue_cap: 8,
        store: Some(scratch("dedup-store")),
        log_dir: None,
        ..ServeConfig::default()
    });

    // Two identical submissions back-to-back: the second must land on the
    // first's job (one execution), which means one shared id.
    let body = "{\"bench\": \"164.gzip\", \"scale\": 1}";
    let (s1, r1) = request(addr, "POST", "/jobs", Some(body));
    let (s2, r2) = request(addr, "POST", "/jobs", Some(body));
    assert_eq!((s1, s2), (200, 200), "{r1} / {r2}");
    let id1 = u64_at(&json::parse(&r1).unwrap(), &["id"]);
    let id2 = u64_at(&json::parse(&r2).unwrap(), &["id"]);
    assert_eq!(id1, id2, "identical in-flight submissions must dedup");

    let rec = poll_terminal(addr, id1);
    schema::validate_job_record(&rec, "e2e record").unwrap();
    assert_eq!(rec.get("state").unwrap().as_str(), Some("done"));
    assert_eq!(rec.get("source").unwrap().as_str(), Some("cold"));
    assert!(u64_at(&rec, &["submissions"]) >= 2);

    // Both submitters read the same result, byte for byte.
    let (sa, kv_a) = request(addr, "GET", &format!("/jobs/{id1}/result.kv"), None);
    let (sb, kv_b) = request(addr, "GET", &format!("/jobs/{id2}/result.kv"), None);
    assert_eq!((sa, sb), (200, 200));
    assert_eq!(kv_a, kv_b);
    assert!(kv_a.contains("cycles "), "{kv_a:?}");

    // The event stream is schema-clean progress.jsonl.
    let (se, events) = request(addr, "GET", &format!("/jobs/{id1}/events"), None);
    assert_eq!(se, 200);
    let report = schema::validate_progress_jsonl(&events).unwrap();
    assert_eq!(report.starts, 1, "{events}");
    assert_eq!(report.finishes, 1, "{events}");

    // A third identical submission after completion is a synchronous
    // warm answer from the memo — new id, already done, source mem.
    let (s3, r3) = request(addr, "POST", "/jobs", Some(body));
    assert_eq!(s3, 200);
    let warm = json::parse(&r3).unwrap();
    schema::validate_job_record(&warm, "warm record").unwrap();
    assert_ne!(u64_at(&warm, &["id"]), id1);
    assert_eq!(warm.get("state").unwrap().as_str(), Some("done"));
    assert_eq!(warm.get("source").unwrap().as_str(), Some("mem"));

    // Stats: 3 submissions, 1 dedup share, 1 cold execution, 1 mem hit.
    let (ss, stats) = request(addr, "GET", "/stats", None);
    assert_eq!(ss, 200);
    schema::validate_serve_stats_json(&stats).unwrap();
    let v = json::parse(&stats).unwrap();
    assert_eq!(u64_at(&v, &["jobs", "submitted"]), 3);
    assert_eq!(u64_at(&v, &["jobs", "deduped"]), 1);
    assert_eq!(u64_at(&v, &["jobs", "completed"]), 2);
    assert_eq!(u64_at(&v, &["cache", "cold"]), 1);
    assert_eq!(u64_at(&v, &["cache", "mem_hits"]), 1);

    let (sd, _) = request(addr, "POST", "/shutdown", None);
    assert_eq!(sd, 200);
    handle.join().unwrap().unwrap();
    assert_eq!(state.outstanding(), 0);
}

#[test]
fn malformed_requests_get_400_and_the_daemon_survives() {
    let (_state, addr, handle) = start(ServeConfig {
        workers: 1,
        queue_cap: 4,
        store: None,
        log_dir: None,
        ..ServeConfig::default()
    });

    // Wire-level garbage, oversized and truncated requests: every one a
    // 400, none fatal.
    assert!(send_raw(addr, b"GARBAGE\r\n\r\n").starts_with("HTTP/1.1 400"));
    let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(9000));
    assert!(send_raw(addr, long_line.as_bytes()).starts_with("HTTP/1.1 400"));
    assert!(
        send_raw(
            addr,
            b"POST /jobs HTTP/1.1\r\nContent-Length: 50\r\n\r\n{\"ben"
        )
        .starts_with("HTTP/1.1 400"),
        "truncated body"
    );
    assert!(
        send_raw(
            addr,
            b"POST /jobs HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n"
        )
        .starts_with("HTTP/1.1 400"),
        "oversized body"
    );

    // Application-level garbage.
    let (s, _) = request(addr, "POST", "/jobs", Some("{not json"));
    assert_eq!(s, 400);
    let (s, _) = request(addr, "POST", "/jobs", Some("{\"bench\": \"999.nope\"}"));
    assert_eq!(s, 400);
    let (s, _) = request(
        addr,
        "POST",
        "/jobs",
        Some("{\"bench\": \"181.mcf\", \"oops\": 1}"),
    );
    assert_eq!(s, 400);

    // Unknown routes / ids / methods.
    let (s, _) = request(addr, "GET", "/nope", None);
    assert_eq!(s, 404);
    let (s, _) = request(addr, "GET", "/jobs/987654", None);
    assert_eq!(s, 404);
    let (s, _) = request(addr, "GET", "/jobs/notanid", None);
    assert_eq!(s, 404);
    let (s, _) = request(addr, "DELETE", "/stats", None);
    assert_eq!(s, 405);

    // After all of that the daemon still answers.
    let (s, body) = request(addr, "GET", "/healthz", None);
    assert_eq!(
        (s, body.as_str()),
        (200, "{\"ok\":true,\"draining\":false}")
    );
    let (s, _) = request(addr, "POST", "/shutdown", None);
    assert_eq!(s, 200);
    handle.join().unwrap().unwrap();
}

#[test]
fn shutdown_drains_inflight_work_and_writes_validated_logs() {
    let logs = scratch("drain-logs");
    let (_state, addr, handle) = start(ServeConfig {
        workers: 1,
        queue_cap: 4,
        store: Some(scratch("drain-store")),
        log_dir: Some(logs.clone()),
        ..ServeConfig::default()
    });

    let (s, resp) = request(
        addr,
        "POST",
        "/jobs",
        Some("{\"bench\": \"181.mcf\", \"scale\": 1}"),
    );
    assert_eq!(s, 200, "{resp}");
    let id = u64_at(&json::parse(&resp).unwrap(), &["id"]);

    // Begin draining while the job is still in flight; new submissions
    // bounce with 503 + Retry-After, the in-flight job still finishes.
    let (s, _) = request(addr, "POST", "/shutdown", None);
    assert_eq!(s, 200);
    let refused = send_raw(
        addr,
        b"POST /jobs HTTP/1.1\r\nContent-Length: 21\r\n\r\n{\"bench\": \"164.gzip\"}",
    );
    assert!(refused.starts_with("HTTP/1.1 503"), "{refused}");
    assert!(refused.contains("Retry-After:"), "{refused}");

    handle.join().unwrap().unwrap();

    // The drained daemon left schema-clean logs with the job completed.
    let jobs = std::fs::read_to_string(logs.join("jobs.jsonl")).unwrap();
    let report = schema::validate_jobs_jsonl(&jobs).unwrap();
    assert_eq!(report.done, 1, "{jobs}");
    assert_eq!(report.failed, 0, "{jobs}");
    let rec = json::parse(jobs.lines().next().unwrap()).unwrap();
    assert_eq!(u64_at(&rec, &["id"]), id);

    let stats = std::fs::read_to_string(logs.join("stats.json")).unwrap();
    schema::validate_serve_stats_json(&stats).unwrap();
    let v = json::parse(&stats).unwrap();
    assert_eq!(v.get("draining").unwrap().as_bool(), Some(true));
    assert_eq!(u64_at(&v, &["jobs", "completed"]), 1);
}
