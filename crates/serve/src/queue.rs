//! The bounded job queue between the acceptor and the worker pool.
//!
//! A plain `Mutex<VecDeque>` + `Condvar` FIFO with a hard capacity:
//! [`JobQueue::push`] never blocks (a full queue is the `503` backpressure
//! signal, not a stall), [`JobQueue::pop`] blocks until work arrives or
//! the queue is closed.  Closing is how drain works: the acceptor closes
//! after the last job is accounted for, every worker drains what remains
//! and then sees `None`.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use crate::lock;

struct Inner {
    items: VecDeque<u64>,
    closed: bool,
}

/// Bounded multi-producer multi-consumer FIFO of job ids.
pub struct JobQueue {
    inner: Mutex<Inner>,
    ready: Condvar,
    cap: usize,
}

/// Why a push was refused.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PushError {
    /// At capacity — the caller should answer `503` with `Retry-After`.
    Full,
    /// Draining — no new work is accepted.
    Closed,
}

impl JobQueue {
    pub fn new(cap: usize) -> JobQueue {
        JobQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    pub fn cap(&self) -> usize {
        self.cap
    }

    pub fn depth(&self) -> usize {
        lock(&self.inner).items.len()
    }

    /// Enqueue without blocking; on success returns the new depth.
    pub fn push(&self, id: u64) -> Result<usize, PushError> {
        let mut g = lock(&self.inner);
        if g.closed {
            return Err(PushError::Closed);
        }
        if g.items.len() >= self.cap {
            return Err(PushError::Full);
        }
        g.items.push_back(id);
        let depth = g.items.len();
        drop(g);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Dequeue, blocking until an item arrives.  `None` once the queue is
    /// closed *and* empty — the worker-pool shutdown signal.
    pub fn pop(&self) -> Option<u64> {
        let mut g = lock(&self.inner);
        loop {
            if let Some(id) = g.items.pop_front() {
                return Some(id);
            }
            if g.closed {
                return None;
            }
            g = self.ready.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Stop accepting pushes; wake every blocked popper.
    pub fn close(&self) {
        lock(&self.inner).closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_capacity() {
        let q = JobQueue::new(2);
        assert_eq!(q.push(1), Ok(1));
        assert_eq!(q.push(2), Ok(2));
        assert_eq!(q.push(3), Err(PushError::Full));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.push(3), Ok(2), "capacity freed by pop");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn close_drains_then_releases_workers() {
        let q = std::sync::Arc::new(JobQueue::new(8));
        q.push(1).unwrap();
        q.close();
        assert_eq!(q.push(2), Err(PushError::Closed));
        assert_eq!(q.pop(), Some(1), "closing never drops queued work");
        assert_eq!(q.pop(), None);

        // A popper blocked before close wakes up with `None`.
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.pop());
        assert_eq!(h.join().unwrap(), None);
    }
}
