//! `181.mcf` analog — network-simplex pointer chasing.
//!
//! The paper parallelized mcf's most time-consuming loops (MinneSPEC large
//! input, 36.1% of instructions parallelized — the largest fraction in
//! Table 2).  mcf's hot loop walks arc/node linked structures with
//! data-dependent addresses, which is why it benefits so strongly from the
//! WEC (up to 18.5% in Figure 11): run-ahead threads chase pointers into
//! nodes the next window of work needs.
//!
//! The analog: a pool of 32-byte nodes chained into many disjoint lists by a
//! shuffled permutation (scattered blocks, like arcs after pricing).  Each
//! parallel region processes a *window* of chains — one thread per chain,
//! each walking its list and accumulating node costs.  Wrong threads run
//! ahead into the next window's chains, which is precisely the paper's
//! indirect prefetching story.  A short sequential "pricing" phase between
//! passes re-walks a slice of nodes and reduces results.
//!
//! Table 1 transformations used: loop coalescing (chain walks flattened into
//! one thread body), statement reordering to increase overlap.

use wec_isa::ProgramBuilder;

use crate::datagen::{linked_chains, permutation_cycle, rng_for};
use crate::harness::{
    counted_continuation, counted_exit, emit_chase_reduce, emit_checksum_reduce, emit_sta_loop,
    IND, INV, MY, T0, T1, T2, T3,
};
use crate::{Scale, Workload};

/// Nodes in the pool (power of two: indices are masked, so even wrong
/// threads chase valid memory).
const NODES: usize = 4096;
/// Disjoint chains (power of two).
const CHAINS: usize = 128;
/// Chains per parallel region (window).
const WINDOW: usize = 16;

struct HostData {
    next: Vec<u64>,
    cost: Vec<u64>,
    heads: Vec<u64>,
    /// Pricing-phase chase permutation.
    perm: Vec<u64>,
}

fn generate() -> HostData {
    let mut rng = rng_for("181.mcf", 7);
    let (next, heads) = linked_chains(&mut rng, NODES, CHAINS);
    let cost: Vec<u64> = (0..NODES as u64)
        .map(|i| i.wrapping_mul(2654435761) >> 7)
        .collect();
    let perm = permutation_cycle(&mut rng, PRICE_PERM);
    HostData {
        next,
        cost,
        heads,
        perm,
    }
}

/// Sequential pricing chase: steps per rep and reps per pass (sized to
/// Table 2's 36.1% parallel fraction).
const PRICE_PERM: usize = 8192;
const PRICE_STEPS: i64 = 3072;
const PRICE_REPS: u32 = 3;

/// Host reference of one full run: per-chain cost walks, repeated `passes`
/// times, each followed by the sequential pricing scan, all folded into the
/// self-check value.
fn reference(data: &HostData, passes: u32) -> (Vec<u64>, u64) {
    let mut out = vec![0u64; CHAINS];
    let mut check = 0u64;
    for pass in 0..passes {
        for (c, &head) in data.heads.iter().enumerate() {
            let mut acc = pass as u64;
            let mut p = head;
            while p != u64::MAX {
                acc = acc.wrapping_add(data.cost[p as usize] ^ (p << 1));
                p = data.next[p as usize];
            }
            out[c] = acc;
        }
        check = crate::harness::checksum_reduce_reference(check, &out);
        check = crate::harness::chase_reduce_reference(check, &data.perm, PRICE_STEPS, PRICE_REPS);
    }
    (out, check)
}

pub fn build(scale: Scale) -> Workload {
    let passes = 2 * scale.units;
    let data = generate();

    let mut b = ProgramBuilder::new("181.mcf");
    // Node pool as an array of structs: [next, cost, flow, depth] × NODES.
    let mut pool = Vec::with_capacity(NODES * 4);
    for i in 0..NODES {
        // Terminators are stored as NODES (one past the last index) so the
        // guest can test with a simple compare after masking.
        let nx = if data.next[i] == u64::MAX {
            NODES as u64
        } else {
            data.next[i]
        };
        pool.push(nx);
        pool.push(data.cost[i]);
        pool.push(0); // flow
        pool.push(0); // depth
    }
    // One extra sentinel node so masked run-ahead reads stay mapped.
    pool.extend_from_slice(&[NODES as u64, 0, 0, 0]);
    let (_, expected_check) = reference(&data, passes);
    let pool_base = b.alloc_u64s(&pool);
    let perm_scaled = crate::harness::scaled_perm(&data.perm);
    let perm_base = b.alloc_u64s(&perm_scaled);
    let heads_host: Vec<u64> = data.heads.clone();
    let heads_base = b.alloc_u64s(&heads_host);
    let out_base = b.alloc_zeroed_u64s(CHAINS as u64);
    // Mapped slack so wrong-thread run-ahead past the heads array reads
    // cold-but-valid memory.
    let _slack = b.alloc_bytes(32 * 1024, 64);
    let check = b.alloc_zeroed_u64s(1);

    // Invariants.
    let (poolr, headsr, outr, maskr, passr, winr, boundr, npassr, permr) = (
        INV[0], INV[1], INV[2], INV[3], INV[4], INV[5], INV[6], INV[7], INV[8],
    );
    b.la(permr, perm_base);
    b.la(poolr, pool_base);
    b.la(headsr, heads_base);
    b.la(outr, out_base);
    b.li(maskr, (CHAINS - 1) as i64);
    b.li(npassr, passes as i64);
    b.li(passr, 0);

    b.label("pass_loop");
    b.li(winr, 0);
    b.label("win_loop");
    // Window [winr*WINDOW, winr*WINDOW + WINDOW).
    b.slli(IND, winr, WINDOW.trailing_zeros() as i32);
    b.addi(boundr, IND, WINDOW as i32);
    emit_sta_loop(
        &mut b,
        "mcf_r",
        1,
        &[IND],
        counted_continuation,
        |_| {},
        |b| {
            // chain head (masked so run-ahead stays in range)
            b.and(T0, MY, maskr);
            b.slli(T0, T0, 3);
            b.add(T0, headsr, T0);
            b.ld(T0, T0, 0); // p
            b.mv(T1, passr); // acc = pass
            b.li(T3, NODES as i64);
            b.label("mcf_walk");
            b.bge(T0, T3, "mcf_walk_end"); // terminator
            b.slli(T2, T0, 5); // p * 32
            b.add(T2, poolr, T2);
            b.ld(T2, T2, 8); // cost
                             // acc += cost ^ (p << 1)
            b.slli(T0, T0, 1);
            b.xor(T2, T2, T0);
            b.srli(T0, T0, 1);
            b.add(T1, T1, T2);
            // p = next
            b.slli(T2, T0, 5);
            b.add(T2, poolr, T2);
            b.ld(T0, T2, 0);
            b.j("mcf_walk");
            b.label("mcf_walk_end");
            // out[chain] = acc
            b.and(T0, MY, maskr);
            b.slli(T0, T0, 3);
            b.add(T0, outr, T0);
            b.sd(T1, T0, 0);
        },
        counted_exit(boundr),
    );
    b.addi(winr, winr, 1);
    b.li(T0, (CHAINS / WINDOW) as i64);
    b.blt(winr, T0, "win_loop");
    // Sequential phase (models mcf's price-update passes): fold this pass's
    // chain results into the checksum, then chase the pricing permutation.
    emit_checksum_reduce(&mut b, "mcf", outr, CHAINS as i64, check);
    emit_chase_reduce(&mut b, "mcf_price", permr, PRICE_STEPS, PRICE_REPS, check);
    b.addi(passr, passr, 1);
    b.blt(passr, npassr, "pass_loop");
    b.halt();

    let program = b.build().unwrap();
    Workload {
        name: "181.mcf",
        suite: "SPEC2000/INT",
        input: "MinneSPEC large",
        transforms: &["loop coalescing", "statement reordering"],
        program,
        check_addr: check,
        expected_check,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_and_verify;
    use wec_core::config::ProcPreset;

    #[test]
    fn reference_is_deterministic() {
        let d = generate();
        let (a, ca) = reference(&d, 2);
        let (b, cb) = reference(&d, 2);
        assert_eq!(a, b);
        assert_eq!(ca, cb);
    }

    #[test]
    fn self_check_passes_under_orig_and_wec() {
        let w = build(Scale::SMOKE);
        for preset in [ProcPreset::Orig, ProcPreset::WthWpWec] {
            run_and_verify(&w, preset.machine(4))
                .unwrap_or_else(|e| panic!("{}: {e}", preset.name()));
        }
    }
}
