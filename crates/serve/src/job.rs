//! Job specifications and records.
//!
//! A `POST /jobs` body is a small JSON object parsed into a [`JobSpec`]:
//! which benchmark (or captured trace) to run, at which scale, under which
//! machine configuration.  Parsing is strict in the house style — unknown
//! fields are rejected, every value is range-checked — so a typo'd
//! submission fails loudly instead of silently running the default
//! machine.  Every accepted job carries a [`JobRecord`] through its life;
//! its JSON form is the `wec-job-record-v1` schema validated by
//! [`wec_telemetry::schema::validate_job_record`] and is what
//! `GET /jobs/<id>` returns and `jobs.jsonl` logs.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

use wec_bench::CfgKey;
use wec_core::config::ProcPreset;
use wec_cpu::bpred::BpredKind;
use wec_telemetry::json::{self, escape_into, Json};
use wec_workloads::{Bench, Scale};

/// What a job executes.
#[derive(Clone, Debug)]
pub enum JobKind {
    /// Full-timing simulation of one benchmark analog.
    Sim { bench: Bench },
    /// Cache-hierarchy replay of a captured `.wectrace` file on the
    /// daemon's filesystem.
    Replay { trace: PathBuf },
}

/// A parsed, validated `POST /jobs` body.
#[derive(Clone, Debug)]
pub struct JobSpec {
    pub kind: JobKind,
    pub scale: Scale,
    pub key: CfgKey,
}

fn field_u64(v: &Json, key: &str, max: u64) -> Result<Option<u64>, String> {
    match v.get(key) {
        None => Ok(None),
        Some(f) => {
            let n = f
                .as_u64()
                .ok_or_else(|| format!("\"{key}\" is not a non-negative integer"))?;
            if n == 0 || n > max {
                return Err(format!("\"{key}\" = {n} out of range 1..={max}"));
            }
            Ok(Some(n))
        }
    }
}

/// Apply the `"cfg"` object onto the paper-default key.  Every field any
/// figure sweeps is settable; anything else is rejected.
fn parse_cfg(v: &Json, key: &mut CfgKey) -> Result<(), String> {
    let Json::Obj(fields) = v else {
        return Err("\"cfg\" is not an object".to_string());
    };
    for (name, _) in fields {
        match name.as_str() {
            "preset" | "n_tus" | "width" | "l1_kb" | "l1_ways" | "side_entries" | "l2_kb"
            | "l1_block" | "mem_latency" | "bpred" => {}
            other => return Err(format!("unknown cfg field {other:?}")),
        }
    }
    if let Some(name) = v.get("preset") {
        let name = name.as_str().ok_or("\"preset\" is not a string")?;
        key.preset = ProcPreset::ALL
            .iter()
            .copied()
            .find(|p| p.name() == name)
            .ok_or_else(|| {
                let names: Vec<&str> = ProcPreset::ALL.iter().map(|p| p.name()).collect();
                format!("unknown preset {name:?} (one of {})", names.join(", "))
            })?;
    }
    if let Some(n) = field_u64(v, "n_tus", 16)? {
        key.n_tus = n as u8;
    }
    if let Some(n) = field_u64(v, "width", 64)? {
        key.width = n as u8;
    }
    if let Some(n) = field_u64(v, "l1_kb", 4096)? {
        key.l1_kb = n as u16;
    }
    if let Some(n) = field_u64(v, "l1_ways", 64)? {
        key.l1_ways = n as u8;
    }
    if let Some(n) = field_u64(v, "side_entries", 255)? {
        key.side_entries = n as u8;
    }
    if let Some(n) = field_u64(v, "l2_kb", 65535)? {
        key.l2_kb = n as u16;
    }
    if let Some(n) = field_u64(v, "l1_block", 4096)? {
        key.l1_block = n as u16;
    }
    if let Some(n) = field_u64(v, "mem_latency", 65535)? {
        key.mem_latency = n as u16;
    }
    if let Some(name) = v.get("bpred") {
        let name = name.as_str().ok_or("\"bpred\" is not a string")?;
        key.bpred = match name {
            "StaticTaken" => BpredKind::StaticTaken,
            "Bimodal" => BpredKind::Bimodal,
            "Gshare" => BpredKind::Gshare,
            other => {
                return Err(format!(
                    "unknown bpred {other:?} (one of StaticTaken, Bimodal, Gshare)"
                ))
            }
        };
    }
    Ok(())
}

impl JobSpec {
    /// Parse and validate one `POST /jobs` body.
    pub fn parse(body: &str) -> Result<JobSpec, String> {
        let v = json::parse(body).map_err(|e| format!("bad JSON: {e}"))?;
        let Json::Obj(fields) = &v else {
            return Err("job spec is not a JSON object".to_string());
        };
        for (name, _) in fields {
            match name.as_str() {
                "kind" | "bench" | "scale" | "trace" | "cfg" => {}
                other => return Err(format!("unknown field {other:?}")),
            }
        }
        let kind_name = match v.get("kind") {
            None => "sim",
            Some(k) => k.as_str().ok_or("\"kind\" is not a string")?,
        };
        let mut key = CfgKey::paper(ProcPreset::WthWpWec, 8);
        if let Some(cfg) = v.get("cfg") {
            parse_cfg(cfg, &mut key)?;
        }
        let kind = match kind_name {
            "sim" => {
                if v.get("trace").is_some() {
                    return Err("\"trace\" is only valid with kind \"replay\"".to_string());
                }
                let name = v
                    .get("bench")
                    .ok_or("sim jobs require \"bench\"")?
                    .as_str()
                    .ok_or("\"bench\" is not a string")?;
                let bench = Bench::ALL
                    .iter()
                    .copied()
                    .find(|b| b.name() == name)
                    .ok_or_else(|| {
                        let names: Vec<&str> = Bench::ALL.iter().map(|b| b.name()).collect();
                        format!("unknown bench {name:?} (one of {})", names.join(", "))
                    })?;
                JobKind::Sim { bench }
            }
            "replay" => {
                if v.get("bench").is_some() || v.get("scale").is_some() {
                    return Err(
                        "replay jobs take their bench and scale from the trace header".to_string(),
                    );
                }
                let path = v
                    .get("trace")
                    .ok_or("replay jobs require \"trace\"")?
                    .as_str()
                    .ok_or("\"trace\" is not a string")?;
                JobKind::Replay {
                    trace: PathBuf::from(path),
                }
            }
            other => return Err(format!("unknown kind {other:?} (sim or replay)")),
        };
        let scale = match field_u64(&v, "scale", 1 << 20)? {
            Some(n) => Scale { units: n as u32 },
            None => Scale { units: 1 },
        };
        Ok(JobSpec { kind, scale, key })
    }

    /// Stable in-flight dedup / warm-memo key: two specs with equal keys
    /// produce byte-identical results, so they share one execution.
    pub fn dedup_key(&self) -> String {
        match &self.kind {
            JobKind::Sim { bench } => format!(
                "sim|{}|{}|{}",
                bench.name(),
                self.scale.units,
                self.key.label()
            ),
            JobKind::Replay { trace } => {
                format!("replay|{}|{}", trace.display(), self.key.label())
            }
        }
    }

    /// The record's `bench` field: the benchmark name for sims, the trace
    /// path for replays (the real bench name is only known once the trace
    /// header is read, and the record identifies the *submission*).
    pub fn bench_field(&self) -> String {
        match &self.kind {
            JobKind::Sim { bench } => bench.name().to_string(),
            JobKind::Replay { trace } => trace.display().to_string(),
        }
    }

    pub fn kind_name(&self) -> &'static str {
        match self.kind {
            JobKind::Sim { .. } => "sim",
            JobKind::Replay { .. } => "replay",
        }
    }

    /// Serialize back into a `POST /jobs` / `POST /hints` body that
    /// [`JobSpec::parse`] round-trips to the same [`JobSpec::dedup_key`].
    /// Every cfg field is emitted explicitly, so the body is independent
    /// of the receiver's defaults.  This is how a routing tier forwards a
    /// predicted spec to the backend that owns its hash.
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"kind\":\"{}\"", self.kind_name());
        match &self.kind {
            JobKind::Sim { bench } => {
                out.push_str(",\"bench\":");
                escape_into(&mut out, bench.name());
                let _ = write!(out, ",\"scale\":{}", self.scale.units);
            }
            // Replay specs take bench and scale from the trace header, and
            // `parse` rejects them if either is present.
            JobKind::Replay { trace } => {
                out.push_str(",\"trace\":");
                escape_into(&mut out, &trace.display().to_string());
            }
        }
        let k = &self.key;
        let bpred = match k.bpred {
            BpredKind::StaticTaken => "StaticTaken",
            BpredKind::Bimodal => "Bimodal",
            BpredKind::Gshare => "Gshare",
        };
        let _ = write!(
            out,
            ",\"cfg\":{{\"preset\":\"{}\",\"n_tus\":{},\"width\":{},\"l1_kb\":{},\"l1_ways\":{},\
             \"side_entries\":{},\"l2_kb\":{},\"l1_block\":{},\"mem_latency\":{},\"bpred\":\"{bpred}\"}}}}",
            k.preset.name(),
            k.n_tus,
            k.width,
            k.l1_kb,
            k.l1_ways,
            k.side_entries,
            k.l2_kb,
            k.l1_block,
            k.mem_latency,
        );
        out
    }
}

/// The speculation attribution ledger of one attribution-enabled job: the
/// conservation summary embedded in the record's `"attribution"` object,
/// plus the full `wec-attribution-v1` document served by
/// `GET /jobs/<id>/attribution`.  Shared with the warm memo via `Arc`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobAttr {
    pub wec_fills: u64,
    pub useful: u64,
    pub wasted: u64,
    pub victim_rescued: u64,
    pub still_resident: u64,
    pub report_json: String,
}

/// Lifecycle state of a job.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JobState {
    Queued,
    Running,
    Done,
    Failed,
    /// A speculative job reclaimed before it executed (drain purge or TTL
    /// expiry).  Never reachable for demand-submitted jobs.
    Cancelled,
}

impl JobState {
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    pub fn terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

/// Everything known about one job — the `wec-job-record-v1` document.
/// Times are milliseconds on the server's monotonic clock (0 = not yet).
#[derive(Clone, Debug)]
pub struct JobRecord {
    pub id: u64,
    pub kind: &'static str,
    pub bench: String,
    pub scale: u32,
    pub cfg: String,
    pub state: JobState,
    /// How the result was satisfied: `none` until terminal, then
    /// `cold`/`disk`/`mem` ([`wec_bench::CacheSource`] names) or `spec`
    /// (result produced ahead of demand by the speculation subsystem).
    pub source: &'static str,
    /// How many `POST /jobs` calls landed on this record (dedup shares).
    /// Zero only for speculative jobs no demand has claimed yet.
    pub submissions: u64,
    /// True for jobs originated by the speculation predictor rather than a
    /// `POST /jobs` call.  Stays true after a demand claim so the record
    /// shows where the work came from.
    pub speculative: bool,
    pub worker: u64,
    pub submit_t_ms: u64,
    pub start_t_ms: u64,
    pub finish_t_ms: u64,
    pub dur_ms: u64,
    pub sim_cycles: u64,
    /// The serving daemon's stable identity (`--backend-id`); `None` keeps
    /// records byte-identical to a single-node build.  Lets aggregated
    /// `jobs.jsonl` streams from a sharded cluster stay attributable.
    pub backend_id: Option<Arc<str>>,
    pub error: String,
    /// Result counters; shared with the warm memo, hence the `Arc`.
    pub metrics: Arc<Vec<(String, u64)>>,
    /// Speculation attribution ledger (`None` renders the record's
    /// `"attribution"` field as the empty object).
    pub attr: Option<Arc<JobAttr>>,
}

impl JobRecord {
    /// A fresh `queued` record for `spec`, submitted at `submit_t_ms`.
    pub fn new(id: u64, spec: &JobSpec, submit_t_ms: u64) -> JobRecord {
        JobRecord {
            id,
            kind: spec.kind_name(),
            bench: spec.bench_field(),
            scale: spec.scale.units,
            cfg: spec.key.label(),
            state: JobState::Queued,
            source: "none",
            submissions: 1,
            speculative: false,
            worker: 0,
            submit_t_ms,
            start_t_ms: 0,
            finish_t_ms: 0,
            dur_ms: 0,
            sim_cycles: 0,
            backend_id: None,
            error: String::new(),
            metrics: Arc::new(Vec::new()),
            attr: None,
        }
    }

    /// Serialize as one `wec-job-record-v1` JSON document (no newline).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"wec-job-record-v1\"");
        let _ = write!(out, ",\"id\":{},\"kind\":\"{}\"", self.id, self.kind);
        out.push_str(",\"bench\":");
        escape_into(&mut out, &self.bench);
        let _ = write!(out, ",\"scale\":{},\"cfg\":", self.scale);
        escape_into(&mut out, &self.cfg);
        let _ = write!(
            out,
            ",\"state\":\"{}\",\"source\":\"{}\",\"submissions\":{},\"worker\":{}",
            self.state.name(),
            self.source,
            self.submissions,
            self.worker
        );
        let _ = write!(
            out,
            ",\"submit_t_ms\":{},\"start_t_ms\":{},\"finish_t_ms\":{},\"dur_ms\":{},\"sim_cycles\":{}",
            self.submit_t_ms, self.start_t_ms, self.finish_t_ms, self.dur_ms, self.sim_cycles
        );
        // Only speculative records carry the flag, so demand-only servers
        // keep emitting byte-identical v1 documents.
        if self.speculative {
            out.push_str(",\"speculative\":true");
        }
        // Same contract as `speculative`: only configured backends emit the
        // field, so a single-node daemon's records stay byte-identical.
        if let Some(b) = &self.backend_id {
            out.push_str(",\"backend_id\":");
            escape_into(&mut out, b);
        }
        out.push_str(",\"error\":");
        escape_into(&mut out, &self.error);
        out.push_str(",\"metrics\":{");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_into(&mut out, k);
            let _ = write!(out, ":{v}");
        }
        out.push_str("},\"attribution\":{");
        if let Some(a) = &self.attr {
            let _ = write!(
                out,
                "\"wec_fills\":{},\"useful\":{},\"wasted\":{},\"victim_rescued\":{},\"still_resident\":{}",
                a.wec_fills, a.useful, a.wasted, a.victim_rescued, a.still_resident
            );
        }
        out.push_str("}}");
        out
    }

    /// The result as `key value` lines (the `.kv` store format).
    pub fn metrics_kv(&self) -> String {
        let mut out = String::new();
        for (k, v) in self.metrics.iter() {
            let _ = writeln!(out, "{k} {v}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wec_telemetry::schema;

    #[test]
    fn parses_a_minimal_sim_spec_with_paper_defaults() {
        let spec = JobSpec::parse("{\"bench\": \"181.mcf\"}").unwrap();
        assert!(matches!(spec.kind, JobKind::Sim { bench } if bench.name() == "181.mcf"));
        assert_eq!(spec.scale.units, 1);
        assert_eq!(spec.key, CfgKey::paper(ProcPreset::WthWpWec, 8));
    }

    #[test]
    fn cfg_overrides_apply_and_are_range_checked() {
        let spec = JobSpec::parse(
            "{\"bench\": \"164.gzip\", \"scale\": 2, \"cfg\": {\"preset\": \"wth-wp-vc\", \
             \"side_entries\": 32, \"l1_ways\": 2, \"bpred\": \"Gshare\"}}",
        )
        .unwrap();
        assert_eq!(spec.scale.units, 2);
        assert_eq!(spec.key.preset, ProcPreset::WthWpVc);
        assert_eq!(spec.key.side_entries, 32);
        assert_eq!(spec.key.l1_ways, 2);
        assert_eq!(spec.key.bpred, BpredKind::Gshare);

        assert!(JobSpec::parse("{\"bench\": \"164.gzip\", \"cfg\": {\"n_tus\": 0}}").is_err());
        assert!(JobSpec::parse("{\"bench\": \"164.gzip\", \"cfg\": {\"n_tus\": 99}}").is_err());
        assert!(JobSpec::parse("{\"bench\": \"164.gzip\", \"cfg\": {\"wec_size\": 8}}").is_err());
        assert!(
            JobSpec::parse("{\"bench\": \"164.gzip\", \"cfg\": {\"bpred\": \"Oracle\"}}").is_err()
        );
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(JobSpec::parse("not json").is_err());
        assert!(JobSpec::parse("[1, 2]").is_err());
        assert!(JobSpec::parse("{}").is_err(), "sim without bench");
        assert!(JobSpec::parse("{\"bench\": \"999.nope\"}").is_err());
        assert!(JobSpec::parse("{\"bench\": \"181.mcf\", \"typo\": 1}").is_err());
        assert!(
            JobSpec::parse("{\"kind\": \"replay\"}").is_err(),
            "no trace"
        );
        assert!(
            JobSpec::parse("{\"kind\": \"replay\", \"trace\": \"t.wectrace\", \"scale\": 2}")
                .is_err(),
            "replay scale comes from the trace"
        );
        assert!(
            JobSpec::parse("{\"kind\": \"sim\", \"bench\": \"181.mcf\", \"trace\": \"x\"}")
                .is_err()
        );
    }

    #[test]
    fn dedup_keys_separate_every_dimension() {
        let a = JobSpec::parse("{\"bench\": \"181.mcf\"}").unwrap();
        let b = JobSpec::parse("{\"bench\": \"181.mcf\", \"scale\": 2}").unwrap();
        let c =
            JobSpec::parse("{\"bench\": \"181.mcf\", \"cfg\": {\"side_entries\": 16}}").unwrap();
        let d = JobSpec::parse("{\"bench\": \"164.gzip\"}").unwrap();
        let keys = [a.dedup_key(), b.dedup_key(), c.dedup_key(), d.dedup_key()];
        let distinct: std::collections::HashSet<&String> = keys.iter().collect();
        assert_eq!(distinct.len(), keys.len(), "{keys:?}");
        assert_eq!(
            a.dedup_key(),
            JobSpec::parse("{\"bench\": \"181.mcf\"}")
                .unwrap()
                .dedup_key()
        );
    }

    #[test]
    fn specs_round_trip_through_to_json() {
        for body in [
            "{\"bench\": \"181.mcf\"}",
            "{\"bench\": \"164.gzip\", \"scale\": 4, \"cfg\": {\"preset\": \"wth-wp-vc\", \
             \"side_entries\": 32, \"l1_ways\": 2, \"bpred\": \"Gshare\"}}",
            "{\"kind\": \"replay\", \"trace\": \"traces/mcf.wectrace\", \
             \"cfg\": {\"side_entries\": 16}}",
        ] {
            let spec = JobSpec::parse(body).unwrap();
            let round = JobSpec::parse(&spec.to_json())
                .unwrap_or_else(|e| panic!("{body}: to_json not parseable: {e}"));
            assert_eq!(spec.dedup_key(), round.dedup_key(), "{body}");
            assert_eq!(spec.key, round.key, "{body}");
        }
    }

    #[test]
    fn records_satisfy_the_published_schema_at_every_stage() {
        let spec = JobSpec::parse("{\"bench\": \"181.mcf\"}").unwrap();
        let mut rec = JobRecord::new(7, &spec, 100);
        let check = |rec: &JobRecord| {
            let v = json::parse(&rec.to_json()).unwrap();
            schema::validate_job_record(&v, "test").unwrap();
        };
        check(&rec);
        rec.state = JobState::Running;
        rec.start_t_ms = 120;
        rec.worker = 3;
        check(&rec);
        rec.state = JobState::Done;
        rec.source = "cold";
        rec.finish_t_ms = 400;
        rec.dur_ms = 280;
        rec.sim_cycles = 123456;
        rec.metrics = Arc::new(vec![
            ("cycles".to_string(), 123456),
            ("forks".to_string(), 9),
        ]);
        check(&rec);
        assert_eq!(rec.metrics_kv(), "cycles 123456\nforks 9\n");

        // An attribution-enabled job embeds its conservation summary.
        rec.attr = Some(Arc::new(JobAttr {
            wec_fills: 10,
            useful: 4,
            wasted: 5,
            victim_rescued: 1,
            still_resident: 0,
            report_json: "{\"schema\":\"wec-attribution-v1\"}".to_string(),
        }));
        check(&rec);
        assert!(rec.to_json().contains("\"attribution\":{\"wec_fills\":10"));
        rec.attr = None;

        rec.state = JobState::Failed;
        rec.error = "self-check \"failed\"".to_string();
        rec.metrics = Arc::new(Vec::new());
        rec.source = "none";
        check(&rec);
        assert!(rec.to_json().contains("\"attribution\":{}"));
    }

    #[test]
    fn backend_id_is_emitted_only_when_configured_and_validates() {
        let spec = JobSpec::parse("{\"bench\": \"181.mcf\"}").unwrap();
        let mut rec = JobRecord::new(3, &spec, 10);
        assert!(
            !rec.to_json().contains("backend_id"),
            "unconfigured records must stay byte-identical"
        );
        rec.backend_id = Some(Arc::from("node-a"));
        let js = rec.to_json();
        assert!(js.contains("\"backend_id\":\"node-a\""), "{js}");
        let v = json::parse(&js).unwrap();
        schema::validate_job_record(&v, "test").unwrap();
    }
}
