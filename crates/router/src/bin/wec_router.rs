//! The router daemon binary.
//!
//! ```text
//! wec_router --backend HOST:PORT [--backend HOST:PORT ...]
//!            [--addr HOST:PORT] [--health-interval-ms N]
//!            [--dead-after N] [--retries N] [--backoff-ms N]
//!            [--io-timeout-ms N] [--events-timeout-ms N]
//!            [--log-dir DIR] [--speculate] [--hint-fanout N]
//! ```
//!
//! Defaults: listen on `127.0.0.1:8410`, probe `/healthz` every 500 ms,
//! declare a backend dead after 3 consecutive failures, retry a
//! queue-full `503` twice against the owner (waiting out `Retry-After`
//! up to `--backoff-ms`, default 1000), 10 s per-exchange timeout, 30 s
//! per-read events-relay timeout.  `--backend` is repeatable and at
//! least one is required; the listed addresses define the rendezvous
//! ring, so every router fronting the same fleet must list the same
//! addresses.  With `--log-dir` the router writes `router.json`
//! (`wec-router-stats-v1`) on drain.  `--speculate` forwards predicted
//! next jobs as `POST /hints` to the backend owning each prediction's
//! hash (3 per submit; `--hint-fanout N` tunes the width and implies
//! `--speculate`).  SIGTERM/SIGINT/`POST /shutdown` drain gracefully.

use std::path::PathBuf;
use std::time::Duration;

use wec_router::server::install_signal_handlers;
use wec_router::{Router, RouterConfig};

fn main() {
    let mut addr = "127.0.0.1:8410".to_string();
    let mut cfg = RouterConfig::default();
    let mut speculate = false;
    let mut fanout: Option<usize> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{what} requires a value"))
                .clone()
        };
        match a.as_str() {
            "--addr" => addr = value("--addr"),
            "--backend" => {
                let b = value("--backend");
                assert!(!b.is_empty(), "--backend must be non-empty");
                cfg.backends.push(b);
            }
            "--health-interval-ms" => {
                cfg.health_interval = Duration::from_millis(
                    value("--health-interval-ms")
                        .parse()
                        .expect("--health-interval-ms N"),
                );
            }
            "--dead-after" => {
                cfg.dead_after = value("--dead-after").parse().expect("--dead-after N");
                assert!(cfg.dead_after > 0, "--dead-after must be positive");
            }
            "--retries" => {
                cfg.retries = value("--retries").parse().expect("--retries N");
            }
            "--backoff-ms" => {
                cfg.backoff_cap = Duration::from_millis(
                    value("--backoff-ms").parse().expect("--backoff-ms N"),
                );
            }
            "--io-timeout-ms" => {
                cfg.io_timeout = Duration::from_millis(
                    value("--io-timeout-ms").parse().expect("--io-timeout-ms N"),
                );
            }
            "--events-timeout-ms" => {
                cfg.events_timeout = Duration::from_millis(
                    value("--events-timeout-ms")
                        .parse()
                        .expect("--events-timeout-ms N"),
                );
            }
            "--log-dir" => cfg.log_dir = Some(PathBuf::from(value("--log-dir"))),
            "--speculate" => speculate = true,
            "--hint-fanout" => {
                let n: usize = value("--hint-fanout").parse().expect("--hint-fanout N");
                assert!(n > 0, "--hint-fanout must be positive");
                fanout = Some(n);
                speculate = true;
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    assert!(
        !cfg.backends.is_empty(),
        "at least one --backend is required"
    );
    if speculate {
        cfg.hint_fanout = fanout.unwrap_or(3);
    }

    install_signal_handlers();
    let router =
        Router::bind(&addr, cfg.clone()).unwrap_or_else(|e| panic!("cannot bind {addr}: {e}"));
    let state = router.state();
    eprintln!(
        "wec-router listening on {} ({} backends, hints {}, logs {})",
        router
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or(addr.clone()),
        cfg.backends.len(),
        if cfg.hint_fanout > 0 {
            format!("fanout {}", cfg.hint_fanout)
        } else {
            "off".to_string()
        },
        cfg.log_dir
            .as_ref()
            .map(|d| d.display().to_string())
            .unwrap_or_else(|| "disabled".to_string()),
    );
    router
        .run()
        .unwrap_or_else(|e| panic!("router loop failed: {e}"));
    eprintln!("wec-router drained: {}", state.stats_json());
}
