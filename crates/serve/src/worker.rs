//! The worker pool: pops job ids, executes them through the experiment
//! harness, and records outcomes.
//!
//! Sim jobs run through [`wec_bench::Runner`] against the daemon's
//! persistent result store — the same store, the same deterministic entry
//! filenames, so a point served by the daemon is byte-identical to the
//! cache entry a direct `experiments` run writes (the CI smoke job diffs
//! exactly this).  Replay jobs go through
//! [`wec_bench::tracerun::replay_point`], sharing its memo keys with the
//! `--replay-trace` sweeps.  A panic anywhere inside a job (workload
//! self-check failure, revision mismatch) is caught and becomes a `failed`
//! record; the worker and the daemon live on.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use wec_bench::tracerun::{replay_point, replay_point_attr};
use wec_bench::{CacheSource, CfgKey, RunObserver, Runner};
use wec_telemetry::report::{progress_finish_line, progress_start_line};

use crate::job::{JobAttr, JobKind, JobSpec, JobState};
use crate::lock;
use crate::queue::Popped;
use crate::state::{JobSlot, Outcome, ServerState};

/// Spawn the configured number of workers; they exit when the queue
/// closes and is empty.
pub fn spawn(state: &Arc<ServerState>) -> Vec<JoinHandle<()>> {
    (0..state.cfg.workers.max(1))
        .map(|i| {
            let st = state.clone();
            std::thread::Builder::new()
                .name(format!("wec-serve-worker-{i}"))
                .spawn(move || worker_loop(st, i))
                .expect("cannot spawn worker thread")
        })
        .collect()
}

fn worker_loop(state: Arc<ServerState>, widx: usize) {
    while let Some(popped) = state.queue.pop() {
        match popped {
            Popped::Demand(id) => {
                state.busy.fetch_add(1, Ordering::SeqCst);
                let t = Instant::now();
                run_job(&state, widx, id);
                state
                    .busy_ms
                    .fetch_add(t.elapsed().as_millis() as u64, Ordering::SeqCst);
                state.busy.fetch_sub(1, Ordering::SeqCst);
            }
            Popped::Spec(id) => {
                // Speculative work fills idle capacity: it never counts
                // toward the busy gauge or utilization, and it releases
                // its in-flight budget slot when done.
                run_job(&state, widx, id);
                state.queue.spec_done();
            }
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "job panicked".to_string()
    }
}

fn run_job(state: &Arc<ServerState>, widx: usize, id: u64) {
    let Some(slot) = state.job(id) else {
        return;
    };
    let spec = {
        let mut g = lock(&slot.inner);
        g.record.state = JobState::Running;
        g.record.start_t_ms = state.now_ms();
        g.record.worker = widx as u64;
        // Speculative jobs wait by design (idle capacity only) — their
        // queue time would drown the demand wait histogram.
        if !g.record.speculative {
            state
                .metrics
                .observe_queue_wait(g.record.start_t_ms.saturating_sub(g.record.submit_t_ms));
        }
        g.spec.take()
    };
    slot.cv.notify_all();
    let Some(spec) = spec else {
        state.complete(&slot, "", Err("internal: job has no spec".to_string()));
        return;
    };
    let key = spec.dedup_key();
    let t = Instant::now();
    let res =
        match std::panic::catch_unwind(AssertUnwindSafe(|| execute(state, &slot, widx, &spec))) {
            Ok(r) => r,
            Err(payload) => Err(panic_message(payload)),
        };
    let res = res.map(|mut o| {
        o.dur_ms = t.elapsed().as_millis() as u64;
        o
    });
    state.complete(&slot, &key, res);
}

/// Streams the runner's start/finish notifications into the job's event
/// buffer as `progress.jsonl` lines, stamped on the server clock and
/// attributed to the serve worker (the runner's own worker index is always
/// 0 for single-point lookups).
struct SlotObserver {
    state: Arc<ServerState>,
    slot: Arc<JobSlot>,
    worker: usize,
}

impl RunObserver for SlotObserver {
    fn sim_started(&self, bench: &'static str, key: &CfgKey, _worker: usize) {
        self.slot.push_event(progress_start_line(
            self.state.now_ms(),
            bench,
            &key.label(),
            self.worker,
        ));
    }

    fn sim_finished(
        &self,
        bench: &'static str,
        key: &CfgKey,
        _worker: usize,
        src: CacheSource,
        dur_ms: u64,
        sim_cycles: u64,
    ) {
        self.slot.push_event(progress_finish_line(
            self.state.now_ms(),
            bench,
            &key.label(),
            self.worker,
            src.name(),
            dur_ms,
            sim_cycles,
        ));
    }
}

/// Parse a [`wec_core::metrics::MachineMetrics::to_kv`] dump back into
/// pairs, preserving emission order.
fn parse_kv(text: &str) -> Result<Vec<(String, u64)>, String> {
    let mut out = Vec::new();
    for line in text.lines() {
        let (k, v) = line
            .split_once(' ')
            .ok_or_else(|| format!("malformed metrics line {line:?}"))?;
        let v: u64 = v
            .trim()
            .parse()
            .map_err(|_| format!("non-integer metric {line:?}"))?;
        out.push((k.to_string(), v));
    }
    Ok(out)
}

fn execute(
    state: &Arc<ServerState>,
    slot: &Arc<JobSlot>,
    widx: usize,
    spec: &JobSpec,
) -> Result<Outcome, String> {
    match &spec.kind {
        JobKind::Sim { bench } => {
            let suite = state.suite_for(*bench, spec.scale);
            let mut runner = match &state.cfg.store {
                Some(dir) => Runner::with_disk_dir(&suite, dir.clone()),
                None => Runner::without_disk_cache(&suite),
            };
            runner.set_observer(Arc::new(SlotObserver {
                state: state.clone(),
                slot: slot.clone(),
                worker: widx,
            }));
            let m = runner.metrics(0, spec.key);
            let source = if runner.counters().cold() > 0 {
                "cold"
            } else {
                "disk"
            };
            Ok(Outcome {
                source,
                metrics: Arc::new(parse_kv(&m.to_kv())?),
                sim_cycles: m.cycles,
                dur_ms: 0,
                attr: None,
            })
        }
        JobKind::Replay { trace } => {
            let slab = state.trace_for(trace)?;
            let label = spec.key.label();
            let t = Instant::now();
            slot.push_event(progress_start_line(
                state.now_ms(),
                &slab.header().bench,
                &label,
                widx,
            ));
            // With the attribution ledger on, the point always replays
            // cold: the result store memoizes cache counters, not ledgers,
            // and the counters come out byte-identical either way.
            let (subset, source, attr) = if state.cfg.attribution {
                let (subset, report) = replay_point_attr(&slab, spec.key);
                let tot = &report.totals;
                let attr = Arc::new(JobAttr {
                    wec_fills: tot.wec_fills,
                    useful: tot.useful,
                    wasted: tot.wasted,
                    victim_rescued: tot.victim_rescued,
                    still_resident: tot.still_resident,
                    report_json: report.to_json(),
                });
                (subset, "cold", Some(attr))
            } else {
                let (subset, cold) = replay_point(&slab, spec.key, state.cfg.store.as_deref());
                (subset, if cold { "cold" } else { "disk" }, None)
            };
            slot.push_event(progress_finish_line(
                state.now_ms(),
                &slab.header().bench,
                &label,
                widx,
                source,
                t.elapsed().as_millis() as u64,
                0,
            ));
            Ok(Outcome {
                source,
                metrics: Arc::new(subset),
                sim_cycles: 0,
                dur_ms: 0,
                attr,
            })
        }
    }
}
