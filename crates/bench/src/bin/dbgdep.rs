//! Minimal repro driver for target-store corruption under wrong execution.

use wec_core::config::ProcPreset;
use wec_core::machine::Machine;
use wec_isa::reg::Reg;
use wec_isa::ProgramBuilder;

fn main() {
    // acc += a[i] through a target store, with a fat body so wrong threads
    // live long enough to matter.
    let n: i64 = 40;
    let mut b = ProgramBuilder::new("dep");
    let a: Vec<u64> = (1..=n as u64).collect();
    let a_base = b.alloc_u64s(&a);
    let acc = b.alloc_zeroed_u64s(1);
    let _slack = b.alloc_bytes(32 * 1024, 64);
    let (i, my, n_r, ab, accb, t0, t1, t2, j) = (
        Reg(1),
        Reg(3),
        Reg(22),
        Reg(20),
        Reg(21),
        Reg(4),
        Reg(5),
        Reg(6),
        Reg(7),
    );
    b.la(ab, a_base);
    b.la(accb, acc);
    b.li(n_r, n);
    b.li(i, 0);
    b.begin(2);
    b.label("body");
    b.mv(my, i);
    b.addi(i, i, 1);
    b.fork(&[i], "body");
    b.tsannounce(accb, 0);
    b.tsagdone();
    // Busy work with a data-dependent branch (wrong-path fodder).
    b.li(j, 20);
    b.li(t2, 0);
    b.label("work");
    b.and(t0, j, my);
    b.andi(t0, t0, 1);
    b.beq(t0, Reg::ZERO, "skip");
    b.slli(t1, j, 3);
    b.add(t1, ab, t1);
    b.ld(t1, t1, 0);
    b.add(t2, t2, t1);
    b.label("skip");
    b.addi(j, j, -1);
    b.bne(j, Reg::ZERO, "work");
    // The dependence: acc += a[my].
    b.ld(t0, accb, 0);
    b.slli(t1, my, 3);
    b.add(t1, ab, t1);
    b.ld(t2, t1, 0);
    b.add(t0, t0, t2);
    b.sd(t0, accb, 0);
    b.blt(i, n_r, "done");
    b.abort_to("seq");
    b.label("done");
    b.thread_end();
    b.label("seq");
    b.halt();
    let prog = b.build().unwrap();
    let expected: u64 = a.iter().sum();
    for preset in ProcPreset::ALL {
        for tus in [2usize, 4, 8] {
            let mut m = Machine::new(preset.machine(tus), &prog).unwrap();
            match m.run() {
                Ok(_) => {
                    let got = m.memory().read_u64(acc).unwrap();
                    println!(
                        "{:10} {tus}TU acc={got} {}",
                        preset.name(),
                        if got == expected { "ok" } else { "** WRONG **" }
                    );
                }
                Err(e) => println!("{:10} {tus}TU ERROR {e}", preset.name()),
            }
        }
    }
}
