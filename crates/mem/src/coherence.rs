//! Update-protocol coherence bookkeeping (paper §3.2.2).
//!
//! During sequential execution, "when a cache block is updated by the single
//! thread executing the sequential code, all the other idle threads that
//! cache a copy of the same block in their L1 caches or WECs are updated
//! simultaneously using a shared bus … and does not introduce any additional
//! delays."  Because our caches are tag-only (values live in the committed
//! memory image), the *functional* effect of the update is automatic; this
//! module keeps the copies' metadata honest and counts the broadcast traffic
//! the paper notes the protocol creates.

use crate::cache::Cache;
use wec_common::ids::Addr;
use wec_common::stats::Counter;

/// The shared update bus.
#[derive(Clone, Debug, Default)]
pub struct UpdateBus {
    /// Store broadcasts placed on the bus.
    pub broadcasts: Counter,
    /// Remote cache copies updated across all broadcasts.
    pub copies_updated: Counter,
}

impl UpdateBus {
    pub fn new() -> Self {
        Self::default()
    }

    /// Broadcast a store to `addr`: every cache in `remotes` holding the
    /// block keeps its copy (update, not invalidate). Remote copies stay
    /// clean — the writer's cache owns the dirty data. Returns how many
    /// copies were updated.
    pub fn broadcast(&mut self, addr: Addr, remotes: &mut [&mut Cache]) -> usize {
        self.broadcasts.inc();
        let mut updated = 0;
        for cache in remotes {
            // An update refreshes the copy but does not change recency: the
            // remote thread did not reference the block.
            if cache.contains(addr) {
                updated += 1;
            }
        }
        self.copies_updated.add(updated as u64);
        updated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheGeometry;
    use crate::line::LineFlags;

    #[test]
    fn counts_copies_across_remote_caches() {
        let geom = CacheGeometry::fully_associative(4, 64);
        let mut a = Cache::new(geom);
        let mut b = Cache::new(geom);
        let mut c = Cache::new(geom);
        let addr = Addr(0x400);
        a.insert(addr, LineFlags::DEMAND);
        c.insert(addr, LineFlags::WRONG);
        let mut bus = UpdateBus::new();
        let n = bus.broadcast(addr, &mut [&mut a, &mut b, &mut c]);
        assert_eq!(n, 2);
        assert_eq!(bus.broadcasts.get(), 1);
        assert_eq!(bus.copies_updated.get(), 2);
        // Update protocol: copies remain resident.
        assert!(a.contains(addr) && c.contains(addr) && !b.contains(addr));
    }

    #[test]
    fn broadcast_with_no_copies_still_counts_bus_traffic() {
        let geom = CacheGeometry::fully_associative(2, 64);
        let mut a = Cache::new(geom);
        let mut bus = UpdateBus::new();
        assert_eq!(bus.broadcast(Addr(0x40), &mut [&mut a]), 0);
        assert_eq!(bus.broadcasts.get(), 1);
        assert_eq!(bus.copies_updated.get(), 0);
    }
}
