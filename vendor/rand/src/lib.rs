//! Offline stand-in for the `rand` crate.
//!
//! The build environment cannot reach a crates registry, so this vendored
//! crate provides the exact subset of the rand 0.10 API the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::from_seed`], and the [`RngExt`] helpers
//! `random`, `random_range`, and `random_bool`.
//!
//! The generator is xoshiro256** — deterministic from its 32-byte seed, which
//! is the only property the workloads rely on (every generated input is
//! seeded, and all golden results in this repository were produced with this
//! implementation).  It is NOT the upstream `StdRng` stream (upstream uses
//! ChaCha12); the two produce different sequences for the same seed.

use std::ops::{Bound, RangeBounds};

/// A seedable random number generator (the subset of `rand::SeedableRng`
/// used here).
pub trait SeedableRng: Sized {
    type Seed;
    fn from_seed(seed: Self::Seed) -> Self;
    fn seed_from_u64(state: u64) -> Self;
}

/// Core generator interface: a source of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Types that can be sampled uniformly over their whole domain.
pub trait StandardUniform: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Integer types `random_range` can target.
pub trait SampleUniform: Copy {
    fn from_u64(v: u64) -> Self;
    fn to_u64(self) -> u64;
    const MIN: Self;
    const MAX: Self;
}

macro_rules! impl_sample_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn from_u64(v: u64) -> Self { v as $t }
            #[inline]
            fn to_u64(self) -> u64 { self as u64 }
            const MIN: Self = <$t>::MIN;
            const MAX: Self = <$t>::MAX;
        }
    )*};
}
impl_sample_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_signed {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleUniform for $t {
            // Order-preserving map into the unsigned domain (offset binary).
            #[inline]
            fn from_u64(v: u64) -> Self { ((v as $u) ^ (1 << (<$u>::BITS - 1))) as $t }
            #[inline]
            fn to_u64(self) -> u64 { ((self as $u) ^ (1 << (<$u>::BITS - 1))) as u64 }
            const MIN: Self = <$t>::MIN;
            const MAX: Self = <$t>::MAX;
        }
    )*};
}
impl_sample_signed!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

#[inline]
fn bounds_to_lo_hi<T: SampleUniform, R: RangeBounds<T>>(range: &R) -> (u64, u64) {
    let lo = match range.start_bound() {
        Bound::Included(&s) => s.to_u64(),
        Bound::Excluded(&s) => s.to_u64() + 1,
        Bound::Unbounded => T::MIN.to_u64(),
    };
    let hi = match range.end_bound() {
        Bound::Included(&e) => e.to_u64(),
        Bound::Excluded(&e) => e.to_u64().checked_sub(1).expect("empty range"),
        Bound::Unbounded => T::MAX.to_u64(),
    };
    assert!(lo <= hi, "cannot sample from an empty range");
    (lo, hi)
}

/// Uniform sample in `[lo, hi]` (inclusive) via rejection from the widened
/// modulus (bias-free; span == u64::MAX+1 falls through to a raw draw).
#[inline]
fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: u64, hi: u64) -> u64 {
    let span = hi.wrapping_sub(lo).wrapping_add(1);
    if span == 0 {
        return rng.next_u64();
    }
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return lo + v % span;
        }
    }
}

/// The extension methods (`rand::RngExt` in 0.10 / `Rng` in earlier
/// versions).
pub trait RngExt: RngCore {
    /// A uniform sample over the type's whole domain.
    #[inline]
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from `range` (half-open or inclusive).
    #[inline]
    fn random_range<T: SampleUniform, R: RangeBounds<T>>(&mut self, range: R) -> T {
        let (lo, hi) = bounds_to_lo_hi(&range);
        T::from_u64(sample_inclusive(self, lo, hi))
    }

    /// `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Alias kept for code written against the pre-0.10 trait name.
pub use self::RngExt as Rng;

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator (xoshiro256**).  Stream differs from
    /// upstream rand's ChaCha12-based `StdRng`; see the crate docs.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn mix(mut z: u64) -> u64 {
            // splitmix64 finalizer — used to key the state from seeds.
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            // Chain every seed byte into every state lane (a single-byte
            // difference must change the whole state: xoshiro's first
            // output depends only on lane 1).
            let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
            for b in seed {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                h = Self::mix(h ^ u64::from_le_bytes(b));
                *w = h;
            }
            if s == [0; 4] {
                s = [1, 2, 3, 4]; // xoshiro's one forbidden state
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut seed = [0u8; 32];
            seed[..8].copy_from_slice(&state.to_le_bytes());
            Self::from_seed(seed)
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::from_seed([7; 32]);
        let mut b = StdRng::from_seed([7; 32]);
        let va: Vec<u64> = (0..16).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.random()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::from_seed([8; 32]);
        assert_ne!(va[0], c.random::<u64>());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.random_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let u = r.random_range(0u8..16);
            assert!(u < 16);
            let z = r.random_range(0usize..=0);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!r.random_bool(0.0));
            assert!(r.random_bool(1.0));
        }
    }

    #[test]
    fn full_domain_signed_map_roundtrip() {
        use super::SampleUniform;
        for v in [i64::MIN, -1, 0, 1, i64::MAX] {
            assert_eq!(i64::from_u64(v.to_u64()), v);
        }
        assert!(i64::MIN.to_u64() < 0i64.to_u64());
        assert!(0i64.to_u64() < i64::MAX.to_u64());
    }
}
