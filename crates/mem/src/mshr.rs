//! Miss-status holding registers: outstanding-miss tracking.
//!
//! When a block is already being fetched, a second access to it must merge
//! into the in-flight miss (one refill, one unit of L2 traffic) instead of
//! issuing again; and when all MSHRs are busy, new misses must stall.  Both
//! effects matter for the paper's mechanisms: wrong-execution loads often
//! touch blocks correct execution is about to miss on, and the merge is
//! precisely how a late wrong-execution prefetch still shortens the correct
//! miss.

use wec_common::ids::{Addr, Cycle};

/// Outcome of registering a miss.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A new MSHR was allocated; the caller should issue the refill.
    /// The access completes at the returned cycle.
    NewMiss(Cycle),
    /// Merged into an in-flight miss for the same block; completes when the
    /// existing refill does.
    Merged(Cycle),
    /// All MSHRs busy — the access must retry next cycle.
    Full,
}

/// A small file of outstanding misses, keyed by block base address.
#[derive(Clone, Debug)]
pub struct Mshrs {
    entries: Vec<(Addr, Cycle)>,
    capacity: usize,
    block_bytes: u64,
}

impl Mshrs {
    pub fn new(capacity: usize, block_bytes: u64) -> Self {
        assert!(capacity >= 1);
        Mshrs {
            entries: Vec::with_capacity(capacity),
            capacity,
            block_bytes,
        }
    }

    /// Drop entries whose refill completed at or before `now`.
    fn expire(&mut self, now: Cycle) {
        self.entries.retain(|&(_, ready)| ready > now);
    }

    /// Is a refill for the block containing `addr` already in flight? If so,
    /// when does it complete?
    pub fn pending(&mut self, addr: Addr, now: Cycle) -> Option<Cycle> {
        self.expire(now);
        let base = addr.block_base(self.block_bytes);
        self.entries
            .iter()
            .find(|&&(a, _)| a == base)
            .map(|&(_, ready)| ready)
    }

    /// Register a miss for the block containing `addr`. `fetch` is called
    /// only if a new refill must be issued and returns its completion cycle.
    pub fn register(
        &mut self,
        addr: Addr,
        now: Cycle,
        fetch: impl FnOnce() -> Cycle,
    ) -> MshrOutcome {
        self.expire(now);
        let base = addr.block_base(self.block_bytes);
        if let Some(&(_, ready)) = self.entries.iter().find(|&&(a, _)| a == base) {
            return MshrOutcome::Merged(ready);
        }
        if self.entries.len() >= self.capacity {
            return MshrOutcome::Full;
        }
        let ready = fetch();
        debug_assert!(ready > now, "refill must take at least one cycle");
        self.entries.push((base, ready));
        MshrOutcome::NewMiss(ready)
    }

    /// Outstanding misses right now.
    pub fn in_flight(&mut self, now: Cycle) -> usize {
        self.expire(now);
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_miss_then_merge() {
        let mut m = Mshrs::new(4, 64);
        let r = m.register(Addr(0x100), Cycle(10), || Cycle(210));
        assert_eq!(r, MshrOutcome::NewMiss(Cycle(210)));
        // Different byte, same block: merges without a second fetch.
        let r = m.register(Addr(0x13f), Cycle(11), || panic!("must not refetch"));
        assert_eq!(r, MshrOutcome::Merged(Cycle(210)));
        assert_eq!(m.in_flight(Cycle(11)), 1);
    }

    #[test]
    fn full_when_capacity_reached() {
        let mut m = Mshrs::new(2, 64);
        m.register(Addr(0x000), Cycle(0), || Cycle(100));
        m.register(Addr(0x040), Cycle(0), || Cycle(100));
        let r = m.register(Addr(0x080), Cycle(0), || Cycle(100));
        assert_eq!(r, MshrOutcome::Full);
    }

    #[test]
    fn entries_expire_when_refill_completes() {
        let mut m = Mshrs::new(1, 64);
        m.register(Addr(0x000), Cycle(0), || Cycle(50));
        assert_eq!(m.in_flight(Cycle(49)), 1);
        assert_eq!(m.in_flight(Cycle(50)), 0);
        // Capacity is free again.
        let r = m.register(Addr(0x040), Cycle(50), || Cycle(99));
        assert!(matches!(r, MshrOutcome::NewMiss(_)));
    }

    #[test]
    fn pending_lookup() {
        let mut m = Mshrs::new(2, 64);
        assert_eq!(m.pending(Addr(0x100), Cycle(0)), None);
        m.register(Addr(0x100), Cycle(0), || Cycle(30));
        assert_eq!(m.pending(Addr(0x108), Cycle(1)), Some(Cycle(30)));
        assert_eq!(m.pending(Addr(0x100), Cycle(30)), None);
    }
}
