//! `197.parser` analog — dictionary lookups over collision chains.
//!
//! The link parser's hot loops look words up in hashed dictionaries and
//! walk linkage lists, with short data-dependent chains and compare
//! branches.  The paper parallelized its dominant loops (MinneSPEC medium,
//! 17.2% parallelized).
//!
//! The analog: a bucketed dictionary of packed 8-byte words with collision
//! chains; a token stream in which roughly half the tokens are dictionary
//! words.  Each thread looks up a block of tokens — hash, chain walk,
//! word compare (a mispredictable branch per step) — and scores hits by
//! chain rank.  Token blocks advance monotonically across regions, so
//! run-ahead threads warm the tokens and chains the next region needs.
//! A sequential "linkage" pass re-reads the hit ranks.
//!
//! Table 1 transformations: loop coalescing, statement reordering.

use wec_isa::reg::Reg;
use wec_isa::ProgramBuilder;

use crate::datagen::{dictionary, hash64, permutation_cycle, rng_for, HASH_MULT};
use crate::harness::{
    counted_continuation, counted_exit, emit_chase_reduce, emit_checksum_reduce, emit_sta_loop,
    IND, INV, MY, T0, T1, T2, T3, T4, T5, T6, T7,
};
use crate::{Scale, Workload};
use rand::RngExt;

/// Dictionary words.
const WORDS: usize = 2048;
/// Hash buckets (power of two).
const BUCKETS: usize = 1024;
/// Token stream length (power of two).
const TOKENS: usize = 1024;
/// Tokens per thread.
const STRIDE: usize = 4;
/// Threads per region.
const WINDOW: usize = 32;
/// Maximum chain steps per lookup.
const DEPTH: usize = 6;
/// Sequential linkage-grammar chase (sized to Table 2's 17.2% fraction).
const LINK_PERM: usize = 8192;
const LINK_STEPS: i64 = 4096;
const LINK_REPS: u32 = 7;

struct HostData {
    heads: Vec<u64>,
    next: Vec<u64>,
    vals: Vec<u64>,
    tokens: Vec<u64>,
    /// Linkage-phase chase permutation.
    perm: Vec<u64>,
}

fn generate() -> HostData {
    let mut rng = rng_for("197.parser", 5);
    let (heads, next, vals) = dictionary(&mut rng, WORDS, BUCKETS);
    let tokens: Vec<u64> = (0..TOKENS)
        .map(|_| {
            if rng.random_bool(0.55) {
                vals[rng.random_range(0..WORDS)]
            } else {
                // A miss token (same alphabet, very unlikely to collide).
                let mut v: u64 = 0;
                for k in 0..8 {
                    v |= u64::from(b'A' + rng.random_range(0..20u8)) << (8 * k);
                }
                v
            }
        })
        .collect();
    let perm = permutation_cycle(&mut rng, LINK_PERM);
    HostData {
        heads,
        next,
        vals,
        tokens,
        perm,
    }
}

/// Host reference: per token, hash → chain walk (≤ DEPTH) → score by rank.
fn reference(d: &HostData, passes: u32) -> u64 {
    let threads = TOKENS / STRIDE;
    let mut out = vec![0u64; threads];
    let mut check = 0u64;
    for pass in 0..passes {
        for t in 0..threads {
            let mut score = pass as u64;
            for k in 0..STRIDE {
                let tok = d.tokens[t * STRIDE + k];
                let h = (hash64(tok) & (BUCKETS as u64 - 1)) as usize;
                let mut p = d.heads[h];
                let mut rank = 1u64;
                let mut hit = 0u64;
                for _ in 0..DEPTH {
                    if p == u64::MAX {
                        break;
                    }
                    if d.vals[p as usize] == tok {
                        hit = rank;
                        break;
                    }
                    rank += 1;
                    p = d.next[p as usize];
                }
                score = score.wrapping_add(hit.wrapping_mul(tok | 1));
            }
            out[t] = score;
        }
        check = crate::harness::checksum_reduce_reference(check, &out);
        check = crate::harness::chase_reduce_reference(check, &d.perm, LINK_STEPS, LINK_REPS);
    }
    check
}

pub fn build(scale: Scale) -> Workload {
    let passes = scale.units;
    let d = generate();
    let expected_check = reference(&d, passes);
    let threads = TOKENS / STRIDE;

    let mut b = ProgramBuilder::new("197.parser");
    let heads = b.alloc_u64s(&d.heads);
    let next = b.alloc_u64s(&d.next);
    let vals = b.alloc_u64s(&d.vals);
    let tokens = b.alloc_u64s(&d.tokens);
    let out = b.alloc_zeroed_u64s(threads as u64);
    let perm_scaled = crate::harness::scaled_perm(&d.perm);
    let perm_base = b.alloc_u64s(&perm_scaled);
    let _slack = b.alloc_bytes(16 * 1024, 64);
    let check = b.alloc_zeroed_u64s(1);

    let (headr, nextr, valr, tokr, outr, maskr, passr, winr, boundr, npassr) = (
        INV[0], INV[1], INV[2], INV[3], INV[4], INV[5], INV[6], INV[7], INV[8], INV[9],
    );
    b.la(headr, heads);
    b.la(nextr, next);
    b.la(valr, vals);
    b.la(tokr, tokens);
    b.la(outr, out);
    let permr = Reg(26);
    b.la(permr, perm_base);
    b.li(maskr, (threads - 1) as i64);
    b.li(npassr, passes as i64);
    b.li(passr, 0);

    b.label("pr_pass");
    b.li(winr, 0);
    b.label("pr_win");
    b.slli(IND, winr, WINDOW.trailing_zeros() as i32);
    b.addi(boundr, IND, WINDOW as i32);
    emit_sta_loop(
        &mut b,
        "pr_r",
        1,
        &[IND],
        counted_continuation,
        |_| {},
        |b| {
            // T0 = t (masked), T1 = score, T2 = k
            b.and(T0, MY, maskr);
            b.mv(T1, passr);
            b.li(T2, 0);
            b.label("pr_k");
            // tok (T3) = tokens[t*STRIDE + k]
            b.slli(T3, T0, STRIDE.trailing_zeros() as i32);
            b.add(T3, T3, T2);
            b.slli(T3, T3, 3);
            b.add(T3, tokr, T3);
            b.ld(T3, T3, 0);
            // h = hash(tok) & (BUCKETS-1)  (T4)
            b.srli(T4, T3, 31);
            b.xor(T4, T3, T4);
            b.li(T5, HASH_MULT as i64);
            b.mul(T4, T4, T5);
            b.srli(T5, T4, 29);
            b.xor(T4, T4, T5);
            b.andi(T4, T4, (BUCKETS - 1) as i32);
            // p = heads[h] (T4); rank (T5) = 1; depth (T6); hit (T7) = 0
            b.slli(T4, T4, 3);
            b.add(T4, headr, T4);
            b.ld(T4, T4, 0);
            b.li(T5, 1);
            b.li(T6, DEPTH as i64);
            b.li(T7, 0);
            b.label("pr_chain");
            b.beq(T6, Reg::ZERO, "pr_chain_end");
            b.addi(T6, T6, -1);
            b.blt(T4, Reg::ZERO, "pr_chain_end"); // p == MAX
                                                  // vals[p] == tok ?
            b.slli(SC0, T4, 3);
            b.add(SC0, valr, SC0);
            b.ld(SC0, SC0, 0);
            b.bne(SC0, T3, "pr_miss");
            b.mv(T7, T5);
            b.j("pr_chain_end");
            b.label("pr_miss");
            b.addi(T5, T5, 1);
            b.slli(SC0, T4, 3);
            b.add(SC0, nextr, SC0);
            b.ld(T4, SC0, 0);
            b.j("pr_chain");
            b.label("pr_chain_end");
            // score += hit * (tok | 1)
            b.alui(wec_isa::inst::AluOp::Or, SC0, T3, 1);
            b.mul(SC0, T7, SC0);
            b.add(T1, T1, SC0);
            b.addi(T2, T2, 1);
            b.slti(SC0, T2, STRIDE as i32);
            b.bne(SC0, Reg::ZERO, "pr_k");
            // out[t] = score
            b.slli(T0, T0, 3);
            b.add(T0, outr, T0);
            b.sd(T1, T0, 0);
        },
        counted_exit(boundr),
    );
    b.addi(winr, winr, 1);
    b.li(T0, (threads / WINDOW) as i64);
    b.blt(winr, T0, "pr_win");
    // Sequential linkage/grammar chase after each pass's lookups.
    emit_checksum_reduce(&mut b, "pr", outr, threads as i64, check);
    emit_chase_reduce(&mut b, "pr_link", permr, LINK_STEPS, LINK_REPS, check);
    b.addi(passr, passr, 1);
    b.blt(passr, npassr, "pr_pass");
    b.halt();

    Workload {
        name: "197.parser",
        suite: "SPEC2000/INT",
        input: "MinneSPEC medium",
        transforms: &["loop coalescing", "statement reordering"],
        program: b.build().unwrap(),
        check_addr: check,
        expected_check,
    }
}

/// Extra scratch register for the body.
const SC0: Reg = Reg(13);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_and_verify;
    use wec_core::config::ProcPreset;

    #[test]
    fn some_tokens_hit_within_chain_depth() {
        let d = generate();
        let mut hits = 0;
        for &tok in &d.tokens {
            let h = (hash64(tok) & (BUCKETS as u64 - 1)) as usize;
            let mut p = d.heads[h];
            for _ in 0..DEPTH {
                if p == u64::MAX {
                    break;
                }
                if d.vals[p as usize] == tok {
                    hits += 1;
                    break;
                }
                p = d.next[p as usize];
            }
        }
        assert!(hits > TOKENS / 4, "only {hits} hits");
        assert!(hits < TOKENS, "everything hits — no misses to mispredict");
    }

    #[test]
    fn self_check_passes_under_orig_and_wec() {
        let w = build(Scale::SMOKE);
        for preset in [ProcPreset::Orig, ProcPreset::WthWpWec] {
            run_and_verify(&w, preset.machine(4))
                .unwrap_or_else(|e| panic!("{}: {e}", preset.name()));
        }
    }
}
