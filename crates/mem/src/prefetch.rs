//! Tagged next-line prefetching (Smith; the paper's reference \[12\]).
//!
//! The paper's `nlp` comparator configuration: "a prefetch is initiated on a
//! miss and on the first hit to a previously prefetched block", with results
//! placed in a fully-associative prefetch buffer beside the L1.  The same
//! *policy* object also drives the WEC's own next-line prefetch (issued when
//! a correct-path load hits a block that wrong execution brought in).

use wec_common::ids::Addr;
use wec_common::stats::Counter;

/// What happened at the L1/prefetch-buffer for a demand access — the policy
/// decides from this whether to arm a prefetch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DemandOutcome {
    /// Missed the L1 and the prefetch buffer.
    Miss,
    /// Hit a block whose `prefetched` flag was still set (first demand hit
    /// to a prefetched block; the caller must clear the flag).
    HitPrefetched,
    /// Ordinary hit.
    Hit,
}

/// The tagged next-line policy: stateless except for counters.
#[derive(Clone, Debug, Default)]
pub struct TaggedNextLine {
    /// Prefetches the policy decided to issue.
    pub issued: Counter,
}

impl TaggedNextLine {
    pub fn new() -> Self {
        Self::default()
    }

    /// Given a demand access to `addr` with the observed `outcome`, return
    /// the block to prefetch, if any.
    pub fn decide(&mut self, addr: Addr, outcome: DemandOutcome, block_bytes: u64) -> Option<Addr> {
        match outcome {
            DemandOutcome::Miss | DemandOutcome::HitPrefetched => {
                self.issued.inc();
                Some(addr.next_block(block_bytes))
            }
            DemandOutcome::Hit => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetches_on_miss() {
        let mut p = TaggedNextLine::new();
        assert_eq!(
            p.decide(Addr(0x1008), DemandOutcome::Miss, 64),
            Some(Addr(0x1040))
        );
        assert_eq!(p.issued.get(), 1);
    }

    #[test]
    fn rearms_on_first_hit_to_prefetched_block() {
        let mut p = TaggedNextLine::new();
        assert_eq!(
            p.decide(Addr(0x1040), DemandOutcome::HitPrefetched, 64),
            Some(Addr(0x1080))
        );
    }

    #[test]
    fn silent_on_ordinary_hits() {
        let mut p = TaggedNextLine::new();
        assert_eq!(p.decide(Addr(0x1000), DemandOutcome::Hit, 64), None);
        assert_eq!(p.issued.get(), 0);
    }

    #[test]
    fn sequential_stream_keeps_one_block_ahead() {
        // Classic tagged-prefetch behaviour: a sequential walk misses once,
        // then every subsequent block is covered by the re-arming hits.
        let mut p = TaggedNextLine::new();
        let mut prefetched: Vec<Addr> = Vec::new();
        for i in 0..8u64 {
            let a = Addr(i * 64);
            let outcome = if i == 0 {
                DemandOutcome::Miss
            } else if prefetched.contains(&a) {
                DemandOutcome::HitPrefetched
            } else {
                DemandOutcome::Miss
            };
            if let Some(next) = p.decide(a, outcome, 64) {
                prefetched.push(next);
            }
        }
        // After the first miss, all later blocks were prefetched.
        assert_eq!(p.issued.get(), 8);
        assert_eq!(
            prefetched,
            (1..=8).map(|i| Addr(i * 64)).collect::<Vec<_>>()
        );
    }
}
