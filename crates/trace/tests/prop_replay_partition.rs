//! Property test for the parallel replay engine's core invariant: a
//! record sequence replayed whole (streaming decoder + k-way merge +
//! one-at-a-time probes) and the same sequence block-partitioned into a
//! [`TraceSlab`] and replayed batched ([`replay_slab`]) produce identical
//! hit/miss/fill counters — for any record mix, any block size, and any
//! decoder-pool width.

use proptest::prelude::*;

use wec_core::config::ProcPreset;
use wec_trace::stream::StreamEncoder;
use wec_trace::{
    cache_stat_subset, replay, replay_slab, Trace, TraceHeader, TraceKind, TraceRecord, TraceSlab,
    FORMAT_VERSION,
};

/// One generated step: how the next record differs from the previous one
/// (same shape as `prop_trace_codec`).
#[derive(Clone, Debug)]
struct Step {
    cdelta: u64,
    kind: TraceKind,
    astep: i64,
    pc: u32,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    (
        prop_oneof![0u64..4, 0u64..16, 1000u64..100_000],
        proptest::sample::select(TraceKind::ALL.to_vec()),
        prop_oneof![Just(64i64), Just(8i64), -4096i64..4096, Just(0i64)],
        0u32..2048,
    )
        .prop_map(|(cdelta, kind, astep, pc)| Step {
            cdelta,
            kind,
            astep,
            pc,
        })
}

/// Materialize steps into tap-shaped records: non-decreasing cycles,
/// per-kind address chains, and the store-drains-last phase invariant.
fn build_records(steps: &[Step], tu: u32) -> Vec<TraceRecord> {
    let mut cycle = 0u64;
    let mut addr = [0x1_0000u64; 5];
    let mut pc = 0x40_0000u32;
    let mut last_was_store = false;
    steps
        .iter()
        .map(|s| {
            let is_store = s.kind == TraceKind::CorrectStore;
            cycle += s.cdelta;
            if s.cdelta == 0 && last_was_store && !is_store {
                cycle += 1;
            }
            last_was_store = is_store;
            let a = &mut addr[s.kind as usize];
            *a = a.wrapping_add(s.astep as u64);
            pc = pc.wrapping_add(s.pc);
            TraceRecord {
                cycle,
                tu,
                pc: match s.kind {
                    TraceKind::InstFetch => *a as u32,
                    TraceKind::CorrectStore => 0,
                    _ => pc,
                },
                addr: *a,
                kind: s.kind,
                squashed: s.kind.access_kind().is_wrong(),
            }
        })
        .collect()
}

fn trace_of(per_tu: &[Vec<TraceRecord>], block_cap: usize) -> Trace {
    let streams = per_tu
        .iter()
        .map(|recs| {
            let mut e = StreamEncoder::with_block_records(block_cap);
            for r in recs {
                e.push(r);
            }
            e.finish()
        })
        .collect::<Vec<_>>();
    Trace {
        header: TraceHeader {
            format_version: FORMAT_VERSION,
            sim_revision: wec_core::SIM_REVISION,
            n_tus: streams.len() as u32,
            scale_units: 1,
            bench: "prop.partition".into(),
            cfg_label: "prop/cfg".into(),
            total_records: per_tu.iter().map(|s| s.len() as u64).sum(),
        },
        streams,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_replay_partition(
        steps_a in proptest::collection::vec(step_strategy(), 0..400),
        steps_b in proptest::collection::vec(step_strategy(), 0..400),
        // Tiny blocks force many partitions; 8192 is the production size
        // (most sequences then fit in one block — the degenerate case).
        block_cap in prop_oneof![Just(16usize), Just(64), Just(8192)],
    ) {
        let ra = build_records(&steps_a, 0);
        let rb = build_records(&steps_b, 1);
        let trace = trace_of(&[ra.clone(), rb.clone()], block_cap);
        let cfg = ProcPreset::WthWpWec.machine(2);

        // Reference: the streaming decoder driving probes one at a time.
        let whole = replay(&trace, &cfg).unwrap();
        let whole_stats = cache_stat_subset(&whole.stats);

        for jobs in [1usize, 3] {
            let slab = TraceSlab::build(&trace, jobs).unwrap();
            // The partitioned decode reassembles each TU's slice exactly.
            prop_assert_eq!(slab.tu_records(0), &ra[..]);
            prop_assert_eq!(slab.tu_records(1), &rb[..]);

            let batched = replay_slab(&slab, &cfg).unwrap();
            prop_assert_eq!(batched.records, whole.records);
            prop_assert_eq!(
                cache_stat_subset(&batched.stats),
                whole_stats.clone(),
                "block_cap={} jobs={} drifted from whole-sequence replay",
                block_cap,
                jobs
            );
        }
    }
}
