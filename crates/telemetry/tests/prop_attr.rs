//! Property tests: the attribution probe's conservation invariant against
//! arbitrary interleavings of its lifecycle hooks.  Whatever order fills,
//! hits, evictions, demand traffic, and PC announcements arrive in —
//! including hits and evictions for blocks never filled, and refills over
//! live lines — every fill is accounted for exactly once:
//! `useful + wasted + victim_rescued + still_resident == wec_fills`, and
//! the origin split sums to the same total.

use proptest::prelude::*;
use wec_telemetry::attr::{AttrProbe, AttributionReport, FillOrigin};

/// One probe hook call, with block/PC values drawn from small ranges so
/// sequences actually collide (refills, hits on live lines, double
/// evictions) instead of touching disjoint addresses.
#[derive(Clone, Debug)]
enum Op {
    NotePc(u32),
    Demand { addr: u64, hit: bool },
    Fill { addr: u64, origin: FillOrigin },
    Hit { addr: u64 },
    Evict { addr: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let addr = (0u64..32).prop_map(|b| b * 64 + 8);
    prop_oneof![
        (0u32..8).prop_map(Op::NotePc),
        (addr.clone(), any::<bool>()).prop_map(|(addr, hit)| Op::Demand { addr, hit }),
        (
            addr.clone(),
            prop_oneof![
                Just(FillOrigin::Wrong),
                Just(FillOrigin::Victim),
                Just(FillOrigin::Prefetch),
            ]
        )
            .prop_map(|(addr, origin)| Op::Fill { addr, origin }),
        addr.clone().prop_map(|addr| Op::Hit { addr }),
        addr.prop_map(|addr| Op::Evict { addr }),
    ]
}

fn apply(probe: &mut AttrProbe, op: &Op, cycle: u64) {
    match *op {
        Op::NotePc(pc) => probe.note_pc(pc),
        Op::Demand { addr, hit } => probe.on_l1_demand(addr, hit),
        Op::Fill { addr, origin } => probe.on_side_fill(addr, cycle, origin),
        Op::Hit { addr } => probe.on_side_hit(addr, cycle),
        Op::Evict { addr } => probe.on_side_evict(addr),
    }
}

proptest! {
    /// Conservation holds after every single hook call, not just at the
    /// end, and the folded report (including its JSON round-trip through
    /// the strict schema validator) agrees with the probes.
    #[test]
    fn conservation_holds_at_every_step(
        seqs in proptest::collection::vec(
            proptest::collection::vec(op_strategy(), 0..120), 1..4),
    ) {
        let mut probes: Vec<AttrProbe> =
            seqs.iter().map(|_| AttrProbe::new(8, 64)).collect();
        for (probe, seq) in probes.iter_mut().zip(&seqs) {
            for (i, op) in seq.iter().enumerate() {
                apply(probe, op, i as u64);
                prop_assert!(
                    probe.snapshot_totals().conserved(),
                    "conservation broken after op {i}: {op:?}"
                );
            }
        }

        let report = AttributionReport::from_probes(probes.iter());
        prop_assert!(report.conserved());
        prop_assert_eq!(report.tus.len(), probes.len());

        // The emitted document survives the strict validator, which
        // re-checks conservation, the origin split, per-TU sums, the
        // timeliness histogram, and heatmap consistency.
        let validated = wec_telemetry::schema::validate_attribution_json(&report.to_json());
        prop_assert!(validated.is_ok(), "document rejected: {:?}", validated);
        let check = validated.unwrap();
        prop_assert_eq!(check.wec_fills, report.totals.wec_fills);
        prop_assert_eq!(check.useful, report.totals.useful);
        prop_assert_eq!(check.wasted, report.totals.wasted);
    }
}
