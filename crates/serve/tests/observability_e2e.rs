//! Observability end-to-end tests: `/metrics` exposition hygiene and
//! reconciliation with `/stats` under concurrent submissions, `HEAD`
//! probes, the draining health flag, the dashboard page and its data
//! document, the sampler ring, and the access log.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use wec_serve::{ServeConfig, Server, ServerState};
use wec_telemetry::json::{self, Json};
use wec_telemetry::schema;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wec-serve-obs-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

type ServerHandle = (
    Arc<ServerState>,
    SocketAddr,
    std::thread::JoinHandle<std::io::Result<()>>,
);

fn start(cfg: ServeConfig) -> ServerHandle {
    let server = Server::bind("127.0.0.1:0", cfg).unwrap();
    let state = server.state();
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run());
    (state, addr, handle)
}

fn send_raw(addr: SocketAddr, raw: &[u8]) -> String {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_nodelay(true).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    let _ = s.write_all(raw);
    let _ = s.shutdown(std::net::Shutdown::Write);
    let mut out = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match s.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => out.extend_from_slice(&buf[..n]),
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn dechunk(body: &str) -> String {
    let mut out = String::new();
    let mut rest = body;
    loop {
        let (len_line, after) = rest.split_once("\r\n").expect("chunk size line");
        let len = usize::from_str_radix(len_line.trim(), 16).expect("hex chunk size");
        if len == 0 {
            break;
        }
        out.push_str(&after[..len]);
        rest = &after[len + 2..];
    }
    out
}

fn parse_response(text: &str) -> (u16, String) {
    let (head, body) = text.split_once("\r\n\r\n").expect("no header terminator");
    let status = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    if head
        .to_ascii_lowercase()
        .contains("transfer-encoding: chunked")
    {
        (status, dechunk(body))
    } else {
        (status, body.to_string())
    }
}

fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let mut raw = format!("{method} {path} HTTP/1.1\r\nHost: e2e\r\nConnection: close\r\n");
    if let Some(b) = body {
        raw.push_str(&format!(
            "Content-Type: application/json\r\nContent-Length: {}\r\n",
            b.len()
        ));
    }
    raw.push_str("\r\n");
    if let Some(b) = body {
        raw.push_str(b);
    }
    parse_response(&send_raw(addr, raw.as_bytes()))
}

fn poll_terminal(addr: SocketAddr, id: u64) -> Json {
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let (status, body) = request(addr, "GET", &format!("/jobs/{id}"), None);
        assert_eq!(status, 200, "{body}");
        let v = json::parse(&body).unwrap();
        let state = v.get("state").and_then(Json::as_str).unwrap().to_string();
        if state == "done" || state == "failed" {
            return v;
        }
        assert!(Instant::now() < deadline, "job {id} stuck in {state}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn u64_at(v: &Json, path: &[&str]) -> u64 {
    let mut cur = v;
    for p in path {
        cur = cur.get(p).unwrap_or_else(|| panic!("missing {p}"));
    }
    cur.as_u64().unwrap()
}

/// Parse a Prometheus text page line by line: every non-comment line is
/// `series value` with a finite numeric value and no series repeats.
fn parse_metrics(page: &str) -> Vec<(String, f64)> {
    let mut out: Vec<(String, f64)> = Vec::new();
    for line in page.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            assert!(
                rest.starts_with("HELP ") || rest.starts_with("TYPE "),
                "unknown comment {line:?}"
            );
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("unparseable line {line:?}"));
        let v: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("non-numeric value in {line:?}"));
        assert!(v.is_finite(), "non-finite value in {line:?}");
        assert!(
            !out.iter().any(|(s, _)| s == series),
            "duplicate series {series:?}"
        );
        out.push((series.to_string(), v));
    }
    out
}

fn metric(series: &[(String, f64)], name: &str) -> f64 {
    series
        .iter()
        .find(|(s, _)| s == name)
        .map(|&(_, v)| v)
        .unwrap_or_else(|| panic!("missing series {name}"))
}

/// Scrape `/metrics`, check exposition hygiene, and check the per-scrape
/// counter invariants (the cache-source split can never exceed what was
/// submitted — each scrape renders one consistent snapshot).
fn scrape_metrics(addr: SocketAddr) -> Vec<(String, f64)> {
    let (s, page) = request(addr, "GET", "/metrics", None);
    assert_eq!(s, 200);
    let series = parse_metrics(&page);
    let submitted = metric(&series, "wec_serve_jobs_submitted_total");
    let deduped = metric(&series, "wec_serve_jobs_deduped_total");
    let failed = metric(&series, "wec_serve_jobs_failed_total");
    let completed = metric(&series, "wec_serve_jobs_completed_total{source=\"cold\"}")
        + metric(&series, "wec_serve_jobs_completed_total{source=\"disk\"}")
        + metric(&series, "wec_serve_jobs_completed_total{source=\"mem\"}");
    assert!(deduped <= submitted, "{deduped} deduped of {submitted}");
    assert!(
        completed + failed <= submitted,
        "{completed} completed + {failed} failed of {submitted} submitted"
    );
    series
}

#[test]
fn metrics_reconcile_with_stats_under_concurrent_submissions() {
    let store = scratch("metrics-store");
    let (_state, addr, handle) = start(ServeConfig {
        workers: 2,
        queue_cap: 16,
        store: Some(store.clone()),
        log_dir: None,
        ..ServeConfig::default()
    });

    // Three submitters race the same spec while a scraper hammers
    // /metrics and /stats: every page must parse cleanly and every stats
    // document must balance (cold + disk + mem == completed — the schema
    // validator enforces it on each scrape).
    let body = "{\"bench\": \"164.gzip\", \"scale\": 1}";
    let ids: Vec<u64> = std::thread::scope(|s| {
        let scraper = s.spawn(|| {
            for _ in 0..20 {
                scrape_metrics(addr);
                let (st, stats) = request(addr, "GET", "/stats", None);
                assert_eq!(st, 200);
                schema::validate_serve_stats_json(&stats).unwrap();
                std::thread::sleep(Duration::from_millis(5));
            }
        });
        let submitters: Vec<_> = (0..3)
            .map(|_| {
                s.spawn(move || {
                    let (st, resp) = request(addr, "POST", "/jobs", Some(body));
                    assert_eq!(st, 200, "{resp}");
                    u64_at(&json::parse(&resp).unwrap(), &["id"])
                })
            })
            .collect();
        let ids = submitters.into_iter().map(|t| t.join().unwrap()).collect();
        scraper.join().unwrap();
        ids
    });
    for id in &ids {
        poll_terminal(addr, *id);
    }
    // One more identical submission after completion: a synchronous warm
    // answer from the memo, so the mem counter moves too.
    let (st, resp) = request(addr, "POST", "/jobs", Some(body));
    assert_eq!(st, 200);
    assert_eq!(
        json::parse(&resp).unwrap().get("source").unwrap().as_str(),
        Some("mem")
    );

    // Quiesced: /metrics and /stats must now agree counter for counter.
    let series = scrape_metrics(addr);
    let (st, stats) = request(addr, "GET", "/stats", None);
    assert_eq!(st, 200);
    schema::validate_serve_stats_json(&stats).unwrap();
    let v = json::parse(&stats).unwrap();
    for (name, path) in [
        ("wec_serve_jobs_submitted_total", &["jobs", "submitted"]),
        ("wec_serve_jobs_deduped_total", &["jobs", "deduped"]),
        ("wec_serve_jobs_failed_total", &["jobs", "failed"]),
        (
            "wec_serve_jobs_completed_total{source=\"cold\"}",
            &["cache", "cold"],
        ),
        (
            "wec_serve_jobs_completed_total{source=\"disk\"}",
            &["cache", "disk_hits"],
        ),
        (
            "wec_serve_jobs_completed_total{source=\"mem\"}",
            &["cache", "mem_hits"],
        ),
        ("wec_serve_jobs_rejected_total", &["queue", "rejected"]),
    ] {
        assert_eq!(
            metric(&series, name) as u64,
            u64_at(&v, path),
            "{name} disagrees with stats {path:?}"
        );
    }
    // 4 submissions of one spec: exactly 1 cold execution; the other 3
    // were satisfied without running anything — by an in-flight dedup
    // share or a warm memo answer, the split depends on the race — and
    // nothing came from disk on this server.
    assert_eq!(metric(&series, "wec_serve_jobs_submitted_total"), 4.0);
    assert_eq!(
        metric(&series, "wec_serve_jobs_completed_total{source=\"cold\"}"),
        1.0
    );
    assert_eq!(
        metric(&series, "wec_serve_jobs_deduped_total")
            + metric(&series, "wec_serve_jobs_completed_total{source=\"mem\"}"),
        3.0
    );
    assert!(metric(&series, "wec_serve_jobs_completed_total{source=\"mem\"}") >= 1.0);
    assert_eq!(
        metric(&series, "wec_serve_jobs_completed_total{source=\"disk\"}"),
        0.0
    );
    // The scrape traffic itself is on the page.
    assert!(
        metric(
            &series,
            "wec_serve_http_requests_total{endpoint=\"metrics\",status=\"200\"}"
        ) >= 20.0
    );
    let (sd, _) = request(addr, "POST", "/shutdown", None);
    assert_eq!(sd, 200);
    handle.join().unwrap().unwrap();

    // A fresh daemon on the same store answers the same spec from disk —
    // and says so in its own exposition.
    let (_state2, addr2, handle2) = start(ServeConfig {
        workers: 1,
        queue_cap: 4,
        store: Some(store),
        log_dir: None,
        ..ServeConfig::default()
    });
    let (st, resp) = request(addr2, "POST", "/jobs", Some(body));
    assert_eq!(st, 200, "{resp}");
    let id = u64_at(&json::parse(&resp).unwrap(), &["id"]);
    let rec = poll_terminal(addr2, id);
    assert_eq!(rec.get("source").unwrap().as_str(), Some("disk"));
    let series = scrape_metrics(addr2);
    assert_eq!(
        metric(&series, "wec_serve_jobs_completed_total{source=\"disk\"}"),
        1.0
    );
    let (sd, _) = request(addr2, "POST", "/shutdown", None);
    assert_eq!(sd, 200);
    handle2.join().unwrap().unwrap();
}

/// A raw `HEAD` exchange: returns (status line ok, headers, body bytes).
fn head_raw(addr: SocketAddr, path: &str) -> (String, String) {
    let raw = format!("HEAD {path} HTTP/1.1\r\nHost: e2e\r\nConnection: close\r\n\r\n");
    let text = send_raw(addr, raw.as_bytes());
    let (head, body) = text.split_once("\r\n\r\n").expect("no header terminator");
    (head.to_string(), body.to_string())
}

#[test]
fn head_probes_match_get_and_healthz_reports_draining() {
    let (_state, addr, handle) = start(ServeConfig {
        workers: 1,
        queue_cap: 8,
        store: Some(scratch("head-store")),
        log_dir: None,
        ..ServeConfig::default()
    });

    // HEAD answers with the GET's exact framing and zero body bytes.
    for path in ["/healthz", "/stats"] {
        let (gs, get_body) = request(addr, "GET", path, None);
        assert_eq!(gs, 200);
        let (head, body) = head_raw(addr, path);
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(
            head.contains(&format!("Content-Length: {}", get_body.len())),
            "HEAD {path} framing:\n{head}\nGET body was {} bytes",
            get_body.len()
        );
        assert!(body.is_empty(), "HEAD {path} leaked a body: {body:?}");
    }
    assert_eq!(
        request(addr, "GET", "/healthz", None).1,
        "{\"ok\":true,\"draining\":false}"
    );

    // Queue distinct cold jobs on the single worker so the drain window
    // stays open, then begin draining: the liveness probe must say so.
    for side in [8u32, 16, 32] {
        let body = format!(
            "{{\"bench\": \"164.gzip\", \"scale\": 1, \"cfg\": {{\"side_entries\": {side}}}}}"
        );
        let (st, resp) = request(addr, "POST", "/jobs", Some(&body));
        assert_eq!(st, 200, "{resp}");
    }
    let (st, _) = request(addr, "POST", "/shutdown", None);
    assert_eq!(st, 200);
    let (st, body) = request(addr, "GET", "/healthz", None);
    assert_eq!(st, 200);
    assert_eq!(body, "{\"ok\":true,\"draining\":true}");
    handle.join().unwrap().unwrap();
}

#[test]
fn attribution_ledger_flows_from_replay_jobs_to_metrics_and_dashboard() {
    use wec_bench::tracerun::capture_key;
    use wec_trace::{capture_run, CaptureMeta};
    use wec_workloads::{Bench, Scale};

    // Capture one smoke-scale trace for replay jobs to chew on.
    let traces = scratch("attr-traces");
    let w = Bench::Gzip.build(Scale::SMOKE);
    let key = capture_key();
    let meta = CaptureMeta {
        bench: w.name.to_string(),
        scale_units: Scale::SMOKE.units,
        cfg_label: key.label(),
    };
    let (_full, trace) = capture_run(&w, key.build(), &meta).unwrap();
    let trace_path = traces.join("164_gzip.wectrace");
    trace.write_to(&trace_path).unwrap();

    let (_state, addr, handle) = start(ServeConfig {
        workers: 1,
        queue_cap: 4,
        store: Some(scratch("attr-store")),
        log_dir: None,
        attribution: true,
        ..ServeConfig::default()
    });

    // A replay job under --attribution: the record embeds a conserving
    // summary and the full wec-attribution-v1 document is one GET away.
    let body = format!("{{\"kind\": \"replay\", \"trace\": {:?}}}", trace_path);
    let (st, resp) = request(addr, "POST", "/jobs", Some(&body));
    assert_eq!(st, 200, "{resp}");
    let id = u64_at(&json::parse(&resp).unwrap(), &["id"]);
    let rec = poll_terminal(addr, id);
    schema::validate_job_record(&rec, "replay record").unwrap();
    assert_eq!(rec.get("state").unwrap().as_str(), Some("done"));
    let summary = rec.get("attribution").unwrap();
    let fills = u64_at(&rec, &["attribution", "wec_fills"]);
    assert!(fills > 0, "no WEC fills attributed:\n{summary:?}");
    let (sa, doc) = request(addr, "GET", &format!("/jobs/{id}/attribution"), None);
    assert_eq!(sa, 200, "{doc}");
    let check = schema::validate_attribution_json(&doc).unwrap();
    assert_eq!(check.wec_fills, fills, "summary disagrees with document");
    assert_eq!(check.useful, u64_at(&rec, &["attribution", "useful"]));

    // A second identical submission is a warm memo answer that still
    // carries the ledger summary — and re-counts it, like sim_cycles.
    let (st, resp) = request(addr, "POST", "/jobs", Some(&body));
    assert_eq!(st, 200, "{resp}");
    let warm = json::parse(&resp).unwrap();
    assert_eq!(warm.get("source").unwrap().as_str(), Some("mem"));
    assert_eq!(u64_at(&warm, &["attribution", "wec_fills"]), fills);

    // /metrics aggregates both answers and the aggregate still conserves.
    let series = scrape_metrics(addr);
    let m_fills = metric(&series, "wec_serve_attr_fills_total");
    assert_eq!(m_fills as u64, 2 * fills);
    assert_eq!(
        metric(&series, "wec_serve_attr_useful_total")
            + metric(&series, "wec_serve_attr_wasted_total")
            + metric(&series, "wec_serve_attr_victim_rescued_total")
            + metric(&series, "wec_serve_attr_still_resident_total"),
        m_fills,
        "ledger aggregates do not conserve"
    );

    // The dashboard's slim job rows flag which jobs have a ledger.
    let (st, data) = request(addr, "GET", "/dashboard/data", None);
    assert_eq!(st, 200);
    schema::validate_dashboard_data_json(&data).unwrap();
    let v = json::parse(&data).unwrap();
    let jobs = v.get("jobs").and_then(Json::as_array).unwrap();
    let row = jobs
        .iter()
        .find(|j| u64_at(j, &["id"]) == id)
        .expect("replay job missing from dashboard");
    assert_eq!(row.get("has_attr").unwrap().as_bool(), Some(true));

    // Sim jobs never carry a ledger: empty summary, 404 on the document.
    let (st, resp) = request(addr, "POST", "/jobs", Some("{\"bench\": \"164.gzip\"}"));
    assert_eq!(st, 200, "{resp}");
    let sim_id = u64_at(&json::parse(&resp).unwrap(), &["id"]);
    let sim_rec = poll_terminal(addr, sim_id);
    schema::validate_job_record(&sim_rec, "sim record").unwrap();
    assert!(matches!(sim_rec.get("attribution"), Some(Json::Obj(f)) if f.is_empty()));
    let (st, _) = request(addr, "GET", &format!("/jobs/{sim_id}/attribution"), None);
    assert_eq!(st, 404);

    let (sd, _) = request(addr, "POST", "/shutdown", None);
    assert_eq!(sd, 200);
    handle.join().unwrap().unwrap();
}

#[test]
fn dashboard_serves_cold_and_its_data_and_access_log_validate() {
    let logs = scratch("dash-logs");
    let (_state, addr, handle) = start(ServeConfig {
        workers: 1,
        queue_cap: 4,
        store: Some(scratch("dash-store")),
        log_dir: Some(logs.clone()),
        sample_interval: Duration::from_millis(20),
        ring_cap: 64,
        ..ServeConfig::default()
    });

    // The page serves cold, self-contained, with the refresh endpoint and
    // both color schemes inline.
    let raw = send_raw(
        addr,
        b"GET /dashboard HTTP/1.1\r\nHost: e2e\r\nConnection: close\r\n\r\n",
    );
    assert!(
        raw.starts_with("HTTP/1.1 200"),
        "{}",
        &raw[..60.min(raw.len())]
    );
    assert!(raw.contains("Content-Type: text/html"), "not html");
    let (st, page) = parse_response(&raw);
    assert_eq!(st, 200);
    assert!(page.contains("<!doctype html>"));
    assert!(page.contains("/dashboard/data"));
    assert!(page.contains("prefers-color-scheme"));
    assert!(page.to_ascii_lowercase().contains("svg"));

    // Run one real job, give the sampler a few intervals, then the data
    // document must validate with a non-empty ring and the job listed.
    let (st, resp) = request(addr, "POST", "/jobs", Some("{\"bench\": \"164.gzip\"}"));
    assert_eq!(st, 200, "{resp}");
    let id = u64_at(&json::parse(&resp).unwrap(), &["id"]);
    poll_terminal(addr, id);
    std::thread::sleep(Duration::from_millis(100));
    let (st, data) = request(addr, "GET", "/dashboard/data", None);
    assert_eq!(st, 200);
    let samples = schema::validate_dashboard_data_json(&data).unwrap();
    assert!(samples > 0, "sampler pushed nothing:\n{data}");
    let v = json::parse(&data).unwrap();
    let jobs = v.get("jobs").and_then(Json::as_array).unwrap();
    assert!(!jobs.is_empty(), "recent jobs missing");
    assert_eq!(u64_at(&jobs[0], &["id"]), id);
    let http = v.get("http").and_then(Json::as_array).unwrap();
    assert!(!http.is_empty(), "endpoint latency digests missing");

    let (st, _) = request(addr, "POST", "/shutdown", None);
    assert_eq!(st, 200);
    handle.join().unwrap().unwrap();

    // Every answered request above is in the access log, schema-clean.
    // (The final shutdown request's line can race the drain; everything
    // before it — page, submit, polls, data — is guaranteed present.)
    let access = std::fs::read_to_string(logs.join("access.jsonl")).unwrap();
    let n = schema::validate_access_jsonl(&access).unwrap();
    assert!(n >= 4, "only {n} access lines:\n{access}");
    assert!(access.contains("\"path\":\"/dashboard\""), "{access}");
    assert!(access.contains("\"path\":\"/dashboard/data\""), "{access}");
    assert!(access.contains("\"method\":\"POST\""), "{access}");
}
