//! Programmatic construction of WISA-64 programs.
//!
//! The paper parallelized its benchmarks *by hand* (§4.2, Table 1); the
//! workload crate does the same thing through this builder: emit
//! instructions, reference labels before they are defined, lay out data, and
//! get a checked [`Program`] back.

use std::collections::BTreeMap;

use crate::inst::{AluOp, BranchCond, FCmpOp, FpuOp, Inst, LoadKind, StoreKind};
use crate::program::{MemImage, Program};
use crate::reg::{FReg, Reg};
use wec_common::error::{SimError, SimResult};
use wec_common::ids::Addr;

/// Base of the builder's data segment bump allocator.
pub const DATA_BASE: Addr = Addr(0x0010_0000);

/// Which field of a pending instruction a label fixes up.
#[derive(Clone, Debug)]
enum Fixup {
    /// (instruction index, label) for `Branch.target` / `Jump` / `Jal`.
    ControlTarget(usize, String),
    /// `Fork.body`.
    ForkBody(usize, String),
    /// `Abort.seq`.
    AbortSeq(usize, String),
}

/// Builder for [`Program`]s with forward label references and a data-segment
/// bump allocator.
///
/// ```
/// use wec_isa::{ProgramBuilder, Reg};
/// let mut b = ProgramBuilder::new("count");
/// let r1 = Reg(1);
/// b.li(r1, 3);
/// b.label("loop");
/// b.addi(r1, r1, -1);
/// b.bne(r1, Reg::ZERO, "loop");
/// b.halt();
/// let prog = b.build().unwrap();
/// assert_eq!(prog.text.len(), 4);
/// ```
pub struct ProgramBuilder {
    name: String,
    text: Vec<Inst>,
    labels: BTreeMap<String, u32>,
    fixups: Vec<Fixup>,
    data: MemImage,
    data_cursor: Addr,
    entry_label: Option<String>,
}

impl ProgramBuilder {
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            text: Vec::new(),
            labels: BTreeMap::new(),
            fixups: Vec::new(),
            data: MemImage::new(),
            data_cursor: DATA_BASE,
            entry_label: None,
        }
    }

    /// Current instruction index (where the next emitted instruction lands).
    pub fn here(&self) -> u32 {
        self.text.len() as u32
    }

    /// Define `name` at the current position.
    pub fn label(&mut self, name: &str) -> &mut Self {
        let prev = self.labels.insert(name.to_string(), self.here());
        assert!(prev.is_none(), "duplicate label {name:?}");
        self
    }

    /// Use `name` as the entry point (default: instruction 0).
    pub fn entry(&mut self, name: &str) -> &mut Self {
        self.entry_label = Some(name.to_string());
        self
    }

    /// Emit a raw instruction.
    pub fn push(&mut self, inst: Inst) -> &mut Self {
        self.text.push(inst);
        self
    }

    // ---------------- data segment ----------------

    /// Reserve `len` zeroed bytes, aligned to `align`, returning the address.
    pub fn alloc_bytes(&mut self, len: u64, align: u64) -> Addr {
        assert!(align.is_power_of_two());
        let base = Addr((self.data_cursor.0 + align - 1) & !(align - 1));
        self.data.alloc(base, len.max(1));
        self.data_cursor = base + len;
        base
    }

    /// Lay out an array of doublewords, returning its base address.
    pub fn alloc_u64s(&mut self, values: &[u64]) -> Addr {
        let base = self.alloc_bytes(values.len() as u64 * 8, 8);
        for (i, &v) in values.iter().enumerate() {
            self.data.write_u64(base + i as u64 * 8, v).unwrap();
        }
        base
    }

    /// Lay out an array of doubles, returning its base address.
    pub fn alloc_f64s(&mut self, values: &[f64]) -> Addr {
        let base = self.alloc_bytes(values.len() as u64 * 8, 8);
        for (i, &v) in values.iter().enumerate() {
            self.data.write_f64(base + i as u64 * 8, v).unwrap();
        }
        base
    }

    /// Zeroed array of `n` doublewords.
    pub fn alloc_zeroed_u64s(&mut self, n: u64) -> Addr {
        self.alloc_bytes(n * 8, 8)
    }

    // ---------------- integer ops ----------------

    pub fn alu(&mut self, op: AluOp, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.push(Inst::Alu { op, rd, rs1, rs2 })
    }

    pub fn alui(&mut self, op: AluOp, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.push(Inst::AluImm { op, rd, rs1, imm })
    }

    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::Add, rd, rs1, rs2)
    }

    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::Sub, rd, rs1, rs2)
    }

    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::Mul, rd, rs1, rs2)
    }

    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::And, rd, rs1, rs2)
    }

    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::Xor, rd, rs1, rs2)
    }

    pub fn or(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::Or, rd, rs1, rs2)
    }

    pub fn sll(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::Sll, rd, rs1, rs2)
    }

    pub fn srl(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::Srl, rd, rs1, rs2)
    }

    pub fn slt(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::Slt, rd, rs1, rs2)
    }

    pub fn div(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::Div, rd, rs1, rs2)
    }

    pub fn rem(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::Rem, rd, rs1, rs2)
    }

    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.alui(AluOp::Add, rd, rs1, imm)
    }

    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.alui(AluOp::And, rd, rs1, imm)
    }

    pub fn slli(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.alui(AluOp::Sll, rd, rs1, imm)
    }

    pub fn srli(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.alui(AluOp::Srl, rd, rs1, imm)
    }

    pub fn slti(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.alui(AluOp::Slt, rd, rs1, imm)
    }

    /// `mv rd, rs` (addi rd, rs, 0).
    pub fn mv(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.addi(rd, rs, 0)
    }

    pub fn li(&mut self, rd: Reg, imm: i64) -> &mut Self {
        debug_assert!(
            (-(1i64 << 47)..(1i64 << 47)).contains(&imm),
            "li immediate exceeds 48 bits"
        );
        self.push(Inst::Li { rd, imm })
    }

    /// Load an address immediate (data-segment pointer).
    pub fn la(&mut self, rd: Reg, addr: Addr) -> &mut Self {
        self.li(rd, addr.0 as i64)
    }

    // ---------------- floating point ----------------

    pub fn fpu(&mut self, op: FpuOp, fd: FReg, fs1: FReg, fs2: FReg) -> &mut Self {
        self.push(Inst::Fpu { op, fd, fs1, fs2 })
    }

    pub fn fadd(&mut self, fd: FReg, fs1: FReg, fs2: FReg) -> &mut Self {
        self.fpu(FpuOp::Add, fd, fs1, fs2)
    }

    pub fn fmul(&mut self, fd: FReg, fs1: FReg, fs2: FReg) -> &mut Self {
        self.fpu(FpuOp::Mul, fd, fs1, fs2)
    }

    pub fn fcmp(&mut self, op: FCmpOp, rd: Reg, fs1: FReg, fs2: FReg) -> &mut Self {
        self.push(Inst::FCmp { op, rd, fs1, fs2 })
    }

    pub fn cvt_if(&mut self, fd: FReg, rs: Reg) -> &mut Self {
        self.push(Inst::CvtIF { fd, rs })
    }

    pub fn cvt_fi(&mut self, rd: Reg, fs: FReg) -> &mut Self {
        self.push(Inst::CvtFI { rd, fs })
    }

    // ---------------- memory ----------------

    pub fn ld(&mut self, rd: Reg, base: Reg, off: i32) -> &mut Self {
        self.push(Inst::Load {
            kind: LoadKind::D,
            rd,
            base,
            off,
        })
    }

    pub fn lw(&mut self, rd: Reg, base: Reg, off: i32) -> &mut Self {
        self.push(Inst::Load {
            kind: LoadKind::W,
            rd,
            base,
            off,
        })
    }

    pub fn lbu(&mut self, rd: Reg, base: Reg, off: i32) -> &mut Self {
        self.push(Inst::Load {
            kind: LoadKind::B,
            rd,
            base,
            off,
        })
    }

    pub fn fld(&mut self, fd: FReg, base: Reg, off: i32) -> &mut Self {
        self.push(Inst::FLoad { fd, base, off })
    }

    pub fn sd(&mut self, rs: Reg, base: Reg, off: i32) -> &mut Self {
        self.push(Inst::Store {
            kind: StoreKind::D,
            rs,
            base,
            off,
        })
    }

    pub fn sw(&mut self, rs: Reg, base: Reg, off: i32) -> &mut Self {
        self.push(Inst::Store {
            kind: StoreKind::W,
            rs,
            base,
            off,
        })
    }

    pub fn sb(&mut self, rs: Reg, base: Reg, off: i32) -> &mut Self {
        self.push(Inst::Store {
            kind: StoreKind::B,
            rs,
            base,
            off,
        })
    }

    pub fn fsd(&mut self, fs: FReg, base: Reg, off: i32) -> &mut Self {
        self.push(Inst::FStore { fs, base, off })
    }

    // ---------------- control flow ----------------

    pub fn branch(&mut self, cond: BranchCond, rs1: Reg, rs2: Reg, target: &str) -> &mut Self {
        let idx = self.text.len();
        self.fixups
            .push(Fixup::ControlTarget(idx, target.to_string()));
        self.push(Inst::Branch {
            cond,
            rs1,
            rs2,
            target: u32::MAX,
        })
    }

    pub fn beq(&mut self, rs1: Reg, rs2: Reg, target: &str) -> &mut Self {
        self.branch(BranchCond::Eq, rs1, rs2, target)
    }

    pub fn bne(&mut self, rs1: Reg, rs2: Reg, target: &str) -> &mut Self {
        self.branch(BranchCond::Ne, rs1, rs2, target)
    }

    pub fn blt(&mut self, rs1: Reg, rs2: Reg, target: &str) -> &mut Self {
        self.branch(BranchCond::Lt, rs1, rs2, target)
    }

    pub fn bge(&mut self, rs1: Reg, rs2: Reg, target: &str) -> &mut Self {
        self.branch(BranchCond::Ge, rs1, rs2, target)
    }

    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, target: &str) -> &mut Self {
        self.branch(BranchCond::Ltu, rs1, rs2, target)
    }

    pub fn j(&mut self, target: &str) -> &mut Self {
        let idx = self.text.len();
        self.fixups
            .push(Fixup::ControlTarget(idx, target.to_string()));
        self.push(Inst::Jump { target: u32::MAX })
    }

    pub fn jal(&mut self, rd: Reg, target: &str) -> &mut Self {
        let idx = self.text.len();
        self.fixups
            .push(Fixup::ControlTarget(idx, target.to_string()));
        self.push(Inst::Jal {
            rd,
            target: u32::MAX,
        })
    }

    pub fn jr(&mut self, rs: Reg) -> &mut Self {
        self.push(Inst::Jr { rs })
    }

    pub fn nop(&mut self) -> &mut Self {
        self.push(Inst::Nop)
    }

    pub fn halt(&mut self) -> &mut Self {
        self.push(Inst::Halt)
    }

    // ---------------- superthreaded extensions ----------------

    pub fn begin(&mut self, region: u16) -> &mut Self {
        self.push(Inst::Begin { region })
    }

    /// Speculatively fork the next iteration's thread at label `body`,
    /// forwarding `regs` (the continuation variables).
    pub fn fork(&mut self, regs: &[Reg], body: &str) -> &mut Self {
        let mut mask = 0u32;
        for r in regs {
            assert!(!r.is_zero(), "forwarding r0 is meaningless");
            mask |= 1 << r.0;
        }
        let idx = self.text.len();
        self.fixups.push(Fixup::ForkBody(idx, body.to_string()));
        self.push(Inst::Fork {
            mask,
            body: u32::MAX,
        })
    }

    /// Abort successors; sequential execution resumes at label `seq`.
    pub fn abort_to(&mut self, seq: &str) -> &mut Self {
        let idx = self.text.len();
        self.fixups.push(Fixup::AbortSeq(idx, seq.to_string()));
        self.push(Inst::Abort { seq: u32::MAX })
    }

    pub fn tsannounce(&mut self, base: Reg, off: i32) -> &mut Self {
        self.push(Inst::TsAnnounce { base, off })
    }

    pub fn tsagdone(&mut self) -> &mut Self {
        self.push(Inst::TsagDone)
    }

    pub fn thread_end(&mut self) -> &mut Self {
        self.push(Inst::ThreadEnd)
    }

    // ---------------- finalize ----------------

    /// Resolve all label references and produce the program.
    pub fn build(mut self) -> SimResult<Program> {
        let resolve = |labels: &BTreeMap<String, u32>, name: &str| -> SimResult<u32> {
            labels
                .get(name)
                .copied()
                .ok_or_else(|| SimError::Assembler(format!("undefined label {name:?}")))
        };
        for fix in std::mem::take(&mut self.fixups) {
            match fix {
                Fixup::ControlTarget(idx, name) => {
                    let t = resolve(&self.labels, &name)?;
                    match &mut self.text[idx] {
                        Inst::Branch { target, .. }
                        | Inst::Jump { target }
                        | Inst::Jal { target, .. } => *target = t,
                        other => unreachable!("fixup on {other:?}"),
                    }
                }
                Fixup::ForkBody(idx, name) => {
                    let t = resolve(&self.labels, &name)?;
                    match &mut self.text[idx] {
                        Inst::Fork { body, .. } => *body = t,
                        other => unreachable!("fixup on {other:?}"),
                    }
                }
                Fixup::AbortSeq(idx, name) => {
                    let t = resolve(&self.labels, &name)?;
                    match &mut self.text[idx] {
                        Inst::Abort { seq } => *seq = t,
                        other => unreachable!("fixup on {other:?}"),
                    }
                }
            }
        }
        let entry = match &self.entry_label {
            Some(name) => resolve(&self.labels, name)?,
            None => 0,
        };
        // Sanity: every control target inside text.
        for (i, inst) in self.text.iter().enumerate() {
            let t = match *inst {
                Inst::Branch { target, .. } | Inst::Jump { target } | Inst::Jal { target, .. } => {
                    Some(target)
                }
                Inst::Fork { body, .. } => Some(body),
                Inst::Abort { seq } => Some(seq),
                _ => None,
            };
            if let Some(t) = t {
                if t as usize >= self.text.len() {
                    return Err(SimError::Assembler(format!(
                        "instruction {i} targets {t}, outside text of {} instructions",
                        self.text.len()
                    )));
                }
            }
        }
        Ok(Program {
            text: self.text,
            entry,
            data: self.data,
            labels: self.labels,
            name: self.name,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_references_resolve() {
        let mut b = ProgramBuilder::new("t");
        b.j("end"); // forward
        b.label("mid");
        b.nop();
        b.label("end");
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.text[0], Inst::Jump { target: 2 });
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut b = ProgramBuilder::new("t");
        b.j("nowhere");
        b.halt();
        assert!(matches!(b.build(), Err(SimError::Assembler(_))));
    }

    #[test]
    #[should_panic(expected = "duplicate label")]
    fn duplicate_labels_panic() {
        let mut b = ProgramBuilder::new("t");
        b.label("x");
        b.nop();
        b.label("x");
    }

    #[test]
    fn fork_mask_built_from_registers() {
        let mut b = ProgramBuilder::new("t");
        b.label("body");
        b.fork(&[Reg(1), Reg(4)], "body");
        b.thread_end();
        let p = b.build().unwrap();
        match p.text[0] {
            Inst::Fork { mask, body } => {
                assert_eq!(mask, (1 << 1) | (1 << 4));
                assert_eq!(body, 0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn data_allocation_is_aligned_and_initialized() {
        let mut b = ProgramBuilder::new("t");
        let a = b.alloc_u64s(&[10, 20, 30]);
        let c = b.alloc_bytes(3, 1);
        let d = b.alloc_u64s(&[99]);
        assert_eq!(a.0 % 8, 0);
        assert_eq!(d.0 % 8, 0);
        assert!(c.0 >= a.0 + 24);
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.data.read_u64(a + 8).unwrap(), 20);
        assert_eq!(p.data.read_u64(d).unwrap(), 99);
    }

    #[test]
    fn entry_label_respected() {
        let mut b = ProgramBuilder::new("t");
        b.nop();
        b.label("main");
        b.halt();
        b.entry("main");
        let p = b.build().unwrap();
        assert_eq!(p.entry, 1);
    }

    #[test]
    fn out_of_range_target_rejected() {
        let mut b = ProgramBuilder::new("t");
        b.push(Inst::Jump { target: 99 });
        assert!(b.build().is_err());
    }

    #[test]
    fn float_data() {
        let mut b = ProgramBuilder::new("t");
        let a = b.alloc_f64s(&[1.5, -2.5]);
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.data.read_f64(a).unwrap(), 1.5);
        assert_eq!(p.data.read_f64(a + 8).unwrap(), -2.5);
    }
}
