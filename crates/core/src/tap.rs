//! Externally attachable memory-access tap.
//!
//! A [`AccessSink`] attached to a [`crate::Machine`] observes every cache
//! access the timing model *admits* to a data path — the exact call stream
//! into [`crate::DataPath::access`], including calls that come back
//! `Retry` (a retried access is re-presented, and re-recorded, on a later
//! cycle).  That stream is sufficient to re-drive the cache hierarchy on
//! its own: every other piece of memory traffic (next-line prefetches,
//! victim/WEC transfers, dirty writebacks, L2 fills) is generated *inside*
//! the data paths deterministically from it.  `wec-trace` builds its
//! capture recorder on this hook.
//!
//! The tap follows the telemetry idiom: the machine holds an
//! `Option<SharedSink>` and every access site pays one `is_some` branch
//! when no sink is attached, so capture-off runs are bit-identical to
//! builds without the hook (`SIM_REVISION` is unchanged).

use std::cell::RefCell;
use std::rc::Rc;

use wec_mem::stats::AccessKind;

/// One admitted cache access, as presented to a data path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessRecord {
    /// Cycle the access was presented (not when it completed).
    pub cycle: u64,
    /// Thread unit whose L1 pair received the access.
    pub tu: u32,
    /// Program counter of the instruction that issued the access.  For
    /// instruction fetches this equals the fetch block address; for
    /// committed-store drains (which have left the pipeline) it is 0.
    pub pc: u32,
    /// Byte address presented to the cache.
    pub addr: u64,
    /// Demand classification — also determines the replay phase: stores
    /// drain after all TU ticks of a cycle, everything else during them.
    pub kind: AccessKind,
}

impl AccessRecord {
    /// Whether the issuing execution was already known wrong (squashed)
    /// when the access was admitted.  Correct-path accesses are recorded
    /// as committed.
    pub fn squashed(&self) -> bool {
        self.kind.is_wrong()
    }
}

/// Receiver for admitted accesses.  Implementations must not assume the
/// access completed — `Retry` outcomes are recorded too, by design.
pub trait AccessSink {
    fn record(&mut self, rec: AccessRecord);
}

/// How a sink is shared with the machine: the attacher keeps one handle to
/// harvest the data after `run()`, the machine keeps the other.
pub type SharedSink = Rc<RefCell<dyn AccessSink>>;
