//! Property tests: the 64-bit binary encoding round-trips every valid
//! instruction, and the decoder never panics on arbitrary words.

use proptest::prelude::*;
use wec_isa::encode::{decode, encode};
use wec_isa::inst::{AluOp, BranchCond, FCmpOp, FpuOp, Inst, LoadKind, StoreKind};
use wec_isa::reg::{FReg, Reg};

fn reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg)
}

fn freg() -> impl Strategy<Value = FReg> {
    (0u8..32).prop_map(FReg)
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    proptest::sample::select(AluOp::ALL.to_vec())
}

fn inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (alu_op(), reg(), reg(), reg()).prop_map(|(op, rd, rs1, rs2)| Inst::Alu {
            op,
            rd,
            rs1,
            rs2
        }),
        (alu_op(), reg(), reg(), any::<i32>()).prop_map(|(op, rd, rs1, imm)| Inst::AluImm {
            op,
            rd,
            rs1,
            imm
        }),
        (reg(), -(1i64 << 47)..(1i64 << 47)).prop_map(|(rd, imm)| Inst::Li { rd, imm }),
        (
            proptest::sample::select(FpuOp::ALL.to_vec()),
            freg(),
            freg(),
            freg()
        )
            .prop_map(|(op, fd, fs1, fs2)| Inst::Fpu { op, fd, fs1, fs2 }),
        (
            proptest::sample::select(FCmpOp::ALL.to_vec()),
            reg(),
            freg(),
            freg()
        )
            .prop_map(|(op, rd, fs1, fs2)| Inst::FCmp { op, rd, fs1, fs2 }),
        (freg(), reg()).prop_map(|(fd, rs)| Inst::CvtIF { fd, rs }),
        (reg(), freg()).prop_map(|(rd, fs)| Inst::CvtFI { rd, fs }),
        (
            proptest::sample::select(vec![LoadKind::D, LoadKind::W, LoadKind::B]),
            reg(),
            reg(),
            any::<i32>()
        )
            .prop_map(|(kind, rd, base, off)| Inst::Load {
                kind,
                rd,
                base,
                off
            }),
        (freg(), reg(), any::<i32>()).prop_map(|(fd, base, off)| Inst::FLoad { fd, base, off }),
        (
            proptest::sample::select(vec![StoreKind::D, StoreKind::W, StoreKind::B]),
            reg(),
            reg(),
            any::<i32>()
        )
            .prop_map(|(kind, rs, base, off)| Inst::Store {
                kind,
                rs,
                base,
                off
            }),
        (freg(), reg(), any::<i32>()).prop_map(|(fs, base, off)| Inst::FStore { fs, base, off }),
        (
            proptest::sample::select(BranchCond::ALL.to_vec()),
            reg(),
            reg(),
            any::<u32>()
        )
            .prop_map(|(cond, rs1, rs2, target)| Inst::Branch {
                cond,
                rs1,
                rs2,
                target
            }),
        any::<u32>().prop_map(|target| Inst::Jump { target }),
        (reg(), any::<u32>()).prop_map(|(rd, target)| Inst::Jal { rd, target }),
        reg().prop_map(|rs| Inst::Jr { rs }),
        Just(Inst::Nop),
        Just(Inst::Halt),
        any::<u16>().prop_map(|region| Inst::Begin { region }),
        (any::<u32>(), 0u32..(1 << 24)).prop_map(|(mask, body)| Inst::Fork { mask, body }),
        any::<u32>().prop_map(|seq| Inst::Abort { seq }),
        (reg(), any::<i32>()).prop_map(|(base, off)| Inst::TsAnnounce { base, off }),
        Just(Inst::TsagDone),
        Just(Inst::ThreadEnd),
    ]
}

proptest! {
    #[test]
    fn encode_decode_roundtrips(i in inst()) {
        let word = encode(&i);
        let back = decode(word).expect("encoded instruction must decode");
        prop_assert_eq!(back, i);
    }

    #[test]
    fn decode_never_panics(word in any::<u64>()) {
        let _ = decode(word); // Ok or Err, never a panic
    }

    #[test]
    fn decode_of_valid_is_stable(i in inst()) {
        // encode ∘ decode ∘ encode is the identity on words.
        let w1 = encode(&i);
        let w2 = encode(&decode(w1).unwrap());
        prop_assert_eq!(w1, w2);
    }
}
