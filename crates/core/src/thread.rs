//! Dynamic thread contexts and the machine's thread-tracking tables.
//!
//! One [`ThreadCtx`] exists per in-flight loop-iteration thread, living in
//! its thread unit's slot.  Whether a thread is *wrong* is tracked centrally
//! in the machine's [`WrongSet`] (it changes when another thread aborts),
//! not here.
//!
//! The machine's per-cycle bookkeeping — which threads are alive and where
//! ([`AliveTable`]), which are wrong ([`WrongSet`]), who has passed TSAG
//! ([`TsagDone`]) — lives in flat structures sized to the handful of
//! in-flight threads, replacing the B-trees these started as: the alive set
//! never exceeds the TU count, wrongness is probed on every load, and the
//! TSAG chain is dense in thread ids within a region.

use wec_common::ids::{Cycle, ThreadId};

use crate::membuf::MemBuffer;

/// Lifecycle of a thread on its TU.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ThreadState {
    /// Executing its body on the core.
    Running,
    /// Hit `thread_end`; waiting to become the oldest thread so its
    /// write-back stage can start.
    WaitWb,
    /// Write-back in progress (TU busy until it completes).
    WritingBack,
}

/// Per-thread state.
#[derive(Clone, Debug)]
pub struct ThreadCtx {
    pub id: ThreadId,
    pub state: ThreadState,
    pub membuf: MemBuffer,
    /// Set when this thread's `fork` has committed.
    pub forked: bool,
    /// Set when this thread's `abort` has begun taking effect (makes the
    /// commit-retry loop idempotent).
    pub aborted: bool,
    /// When this thread committed `tsagdone` (for the ring-latency check).
    pub tsag_done_at: Option<Cycle>,
}

impl ThreadCtx {
    pub fn new(id: ThreadId) -> Self {
        ThreadCtx {
            id,
            state: ThreadState::Running,
            membuf: MemBuffer::new(),
            forked: false,
            aborted: false,
            tsag_done_at: None,
        }
    }
}

/// Alive threads — id → thread unit — as a sorted vector.
///
/// At most one thread per TU is alive, so the table holds ≤ `n_tus`
/// entries; inserts are almost always at the end (ids are handed out
/// monotonically).  Iteration is in id order, like the `BTreeMap` this
/// replaces.
#[derive(Clone, Debug, Default)]
pub struct AliveTable {
    entries: Vec<(u64, usize)>,
}

impl AliveTable {
    pub fn new() -> Self {
        Self::default()
    }

    fn pos(&self, id: u64) -> Result<usize, usize> {
        self.entries.binary_search_by_key(&id, |&(i, _)| i)
    }

    pub fn insert(&mut self, id: u64, tu: usize) {
        match self.pos(id) {
            Ok(i) => self.entries[i].1 = tu,
            Err(i) => self.entries.insert(i, (id, tu)),
        }
    }

    /// Remove `id`, returning its TU if it was present.
    pub fn remove(&mut self, id: u64) -> Option<usize> {
        match self.pos(id) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    pub fn get(&self, id: u64) -> Option<usize> {
        self.pos(id).ok().map(|i| self.entries[i].1)
    }

    pub fn contains(&self, id: u64) -> bool {
        self.pos(id).is_ok()
    }

    /// All entries in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, usize)> + '_ {
        self.entries.iter().copied()
    }

    /// Entries with id strictly greater than `id`, in id order (the ring
    /// "downstream of" walk).
    pub fn after(&self, id: u64) -> &[(u64, usize)] {
        let start = self.entries.partition_point(|&(i, _)| i <= id);
        &self.entries[start..]
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The set of threads marked wrong, as a sorted vector (≤ `n_tus` live
/// entries; probed on every load issued by a threaded core).
#[derive(Clone, Debug, Default)]
pub struct WrongSet {
    ids: Vec<u64>,
}

impl WrongSet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns true if `id` was newly inserted.
    pub fn insert(&mut self, id: u64) -> bool {
        match self.ids.binary_search(&id) {
            Ok(_) => false,
            Err(i) => {
                self.ids.insert(i, id);
                true
            }
        }
    }

    pub fn contains(&self, id: u64) -> bool {
        self.ids.binary_search(&id).is_ok()
    }

    pub fn clear(&mut self) {
        self.ids.clear();
    }

    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// TSAG-done times for the current region, dense in thread id.
///
/// Within a region the committing thread ids form a contiguous run
/// starting at the region's first id, and `tsagdone` commits in id order
/// (each thread waits for its predecessor's flag or the watermark), so a
/// base-offset vector replaces the `BTreeMap`: lookups on the stall-retry
/// path become an index instead of a tree walk.  Out-of-order inserts are
/// still handled (by front-padding) so the structure does not depend on
/// that scheduling argument for correctness.
#[derive(Clone, Debug, Default)]
pub struct TsagDone {
    base: u64,
    done: Vec<Option<Cycle>>,
}

impl TsagDone {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn clear(&mut self) {
        self.done.clear();
    }

    pub fn insert(&mut self, id: u64, at: Cycle) {
        if self.done.is_empty() {
            self.base = id;
            self.done.push(Some(at));
            return;
        }
        if id < self.base {
            let pad = (self.base - id) as usize;
            self.done.splice(0..0, std::iter::repeat_n(None, pad));
            self.base = id;
            self.done[0] = Some(at);
            return;
        }
        let idx = (id - self.base) as usize;
        if idx >= self.done.len() {
            self.done.resize(idx + 1, None);
        }
        self.done[idx] = Some(at);
    }

    pub fn get(&self, id: u64) -> Option<Cycle> {
        if self.done.is_empty() || id < self.base {
            return None;
        }
        let idx = (id - self.base) as usize;
        self.done.get(idx).copied().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_thread_is_running() {
        let t = ThreadCtx::new(ThreadId(4));
        assert_eq!(t.state, ThreadState::Running);
        assert!(!t.forked && !t.aborted);
        assert!(t.tsag_done_at.is_none());
    }

    #[test]
    fn alive_table_sorted_ops() {
        let mut a = AliveTable::new();
        a.insert(5, 1);
        a.insert(3, 0);
        a.insert(9, 2);
        assert_eq!(a.get(3), Some(0));
        assert_eq!(a.get(5), Some(1));
        assert!(a.contains(9) && !a.contains(4));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![(3, 0), (5, 1), (9, 2)]);
        assert_eq!(a.after(3), &[(5, 1), (9, 2)]);
        assert_eq!(a.after(4), &[(5, 1), (9, 2)]);
        assert_eq!(a.after(9), &[] as &[(u64, usize)]);
        assert_eq!(a.remove(5), Some(1));
        assert_eq!(a.remove(5), None);
        assert_eq!(a.len(), 2);
        // Re-insert with a new TU overwrites.
        a.insert(3, 7);
        assert_eq!(a.get(3), Some(7));
    }

    #[test]
    fn wrong_set_dedupes() {
        let mut w = WrongSet::new();
        assert!(w.insert(4));
        assert!(!w.insert(4));
        assert!(w.insert(2));
        assert!(w.contains(2) && w.contains(4) && !w.contains(3));
        w.clear();
        assert!(w.is_empty());
    }

    #[test]
    fn tsag_done_dense_and_sparse() {
        let mut t = TsagDone::new();
        assert_eq!(t.get(10), None);
        t.insert(10, Cycle(100));
        t.insert(11, Cycle(105));
        t.insert(14, Cycle(120)); // gap: 12, 13 skipped via the watermark
        assert_eq!(t.get(10), Some(Cycle(100)));
        assert_eq!(t.get(11), Some(Cycle(105)));
        assert_eq!(t.get(12), None);
        assert_eq!(t.get(14), Some(Cycle(120)));
        // Out-of-order insert below the base still lands.
        t.insert(8, Cycle(90));
        assert_eq!(t.get(8), Some(Cycle(90)));
        assert_eq!(t.get(9), None);
        assert_eq!(t.get(10), Some(Cycle(100)));
        t.clear();
        assert_eq!(t.get(10), None);
        t.insert(20, Cycle(1));
        assert_eq!(t.get(20), Some(Cycle(1)));
    }
}
