//! Property tests for the shared infrastructure: address arithmetic,
//! statistics identities and table rendering.

use proptest::prelude::*;
use wec_common::ids::Addr;
use wec_common::stats::{equal_importance_speedup, pct_change, pct_reduction, speedup};
use wec_common::table::Table;
use wec_common::SplitMix64;

proptest! {
    #[test]
    fn address_decomposition_is_lossless(
        raw in any::<u64>(),
        block_pow in 4u32..8,   // 16..128-byte blocks
        sets_pow in 0u32..12,   // 1..2048 sets
    ) {
        let a = Addr(raw >> 8); // keep tag*sets*block in range
        let block = 1u64 << block_pow;
        let sets = 1u64 << sets_pow;
        let rebuilt = (a.tag(block, sets) * sets + a.set_index(block, sets) as u64) * block
            + a.block_offset(block) as u64;
        prop_assert_eq!(rebuilt, a.0);
        prop_assert_eq!(a.block_base(block).block_offset(block), 0);
        prop_assert!(a.next_block(block).0 - a.block_base(block).0 == block);
    }

    #[test]
    fn speedup_identities(base in 1u64..1_000_000, new in 1u64..1_000_000) {
        let s = speedup(base, new);
        prop_assert!((s * new as f64 - base as f64).abs() < 1e-6 * base as f64 + 1e-9);
        // change followed by reduction cancels
        prop_assert!((pct_change(base, new) + pct_reduction(base, new)).abs() < 1e-9);
    }

    #[test]
    fn equal_importance_bounded_by_extremes(
        pairs in proptest::collection::vec((1u64..100_000, 1u64..100_000), 1..10)
    ) {
        let avg = equal_importance_speedup(&pairs);
        let speedups: Vec<f64> = pairs.iter().map(|&(b, n)| speedup(b, n)).collect();
        let min = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = speedups.iter().cloned().fold(0.0, f64::max);
        prop_assert!(avg >= min - 1e-9 && avg <= max + 1e-9);
    }

    #[test]
    fn rng_below_is_always_in_bounds(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut r = SplitMix64::new(seed);
        for _ in 0..100 {
            prop_assert!(r.below(bound) < bound);
        }
    }

    #[test]
    fn shuffle_preserves_multiset(seed in any::<u64>(), n in 1usize..64) {
        let mut r = SplitMix64::new(seed);
        let mut v: Vec<usize> = (0..n).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn table_render_has_one_line_per_row(
        rows in proptest::collection::vec(
            (any::<u32>(), any::<u32>()),
            0..20
        )
    ) {
        let mut t = Table::new("prop", &["a", "b"]);
        for (x, y) in &rows {
            t.row(vec![x.to_string(), y.to_string()]);
        }
        let rendered = t.render();
        // title + header + rule + one line per row
        prop_assert_eq!(rendered.lines().count(), 3 + rows.len());
        let csv = t.to_csv();
        prop_assert_eq!(csv.lines().count(), 1 + rows.len());
    }
}
