//! The core's window onto the rest of the machine.
//!
//! A [`Core`](crate::core::Core) never owns caches or thread-level state; it
//! calls through [`CoreEnv`].  The superthreaded machine (`wec-core`)
//! implements this trait per thread unit — routing loads through the memory
//! buffer and the L1/WEC composite, tagging them as wrong-thread loads when
//! the thread has been marked wrong, and realizing `fork`/`abort`/
//! write-back semantics.  [`MockEnv`] is the flat test implementation.

use wec_common::ids::{Addr, Cycle};
use wec_isa::inst::Inst;
use wec_isa::program::MemImage;

use crate::regs::ArchRegs;

/// Base "physical" address of the text segment: instruction index `i` is
/// fetched from `TEXT_BASE + 8*i` through the instruction cache.
pub const TEXT_BASE: u64 = 0x0040_0000;

/// Outcome of issuing a memory access this cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemIssue {
    /// Access accepted: `value` is the loaded value (zero for instruction
    /// fetches) and `ready_at` is when it arrives.
    Done { ready_at: Cycle, value: u64 },
    /// Structural hazard (cache port or MSHR): retry next cycle.
    Retry,
    /// Run-time dependence wait: the address matches an upstream target
    /// store whose value has not arrived yet (§2.2). Retry until released.
    Blocked,
}

/// What a committing superthreaded/system instruction tells the core to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StaOutcome {
    /// Retired normally; keep committing.
    Continue,
    /// Cannot take effect yet (fork with no idle TU, abort draining older
    /// threads): retry this commit next cycle.
    Stall,
    /// Retired; squash everything younger and resume fetching at this PC.
    Redirect(u32),
    /// The thread is finished (thread end, wrong-thread death, halt): flush
    /// and go idle until the machine restarts this core.
    Stop,
}

/// Services the machine provides to a core.
pub trait CoreEnv {
    /// Issue a data load.  `wrong_path` marks loads issued by the wrong-path
    /// engine after branch resolution; the environment itself knows whether
    /// the whole *thread* is wrong.  `pc` is the program counter of the
    /// issuing instruction (access taps record it alongside the address).
    /// The returned value reflects committed memory plus any thread-level
    /// forwarding.
    fn load(&mut self, addr: Addr, bytes: u64, now: Cycle, wrong_path: bool, pc: u32) -> MemIssue;

    /// Fetch the instruction-cache block containing `addr` (see
    /// [`TEXT_BASE`]). The value field of [`MemIssue::Done`] is unused.
    fn ifetch(&mut self, addr: Addr, now: Cycle) -> MemIssue;

    /// Commit a store. Returns false if the store cannot be accepted this
    /// cycle (store buffer full) — the core must stall commit and retry.
    fn commit_store(&mut self, addr: Addr, bytes: u64, value: u64, now: Cycle) -> bool;

    /// Commit a superthreaded instruction (`begin`/`fork`/`abort`/
    /// `tsannounce`/`tsagdone`/`thread_end`) or `halt`. `regs` is the
    /// architectural state at this commit point.
    fn sta_commit(&mut self, inst: &Inst, regs: &ArchRegs, now: Cycle) -> StaOutcome;
}

/// A flat-latency environment for unit tests: one memory image, fixed load
/// and fetch latencies, no thread semantics (`halt` stops, other STA
/// instructions retire as no-ops but are recorded).
pub struct MockEnv {
    pub mem: MemImage,
    pub load_latency: u64,
    pub ifetch_latency: u64,
    pub halted: bool,
    /// Every wrong-path load the core issued: (addr, bytes).
    pub wrong_path_loads: Vec<(Addr, u64)>,
    /// Every correct/speculative load issued: (addr, bytes).
    pub loads: Vec<(Addr, u64)>,
    /// Every committed store: (addr, bytes, value).
    pub stores: Vec<(Addr, u64, u64)>,
    /// STA instructions committed (for tests).
    pub sta_log: Vec<Inst>,
}

impl MockEnv {
    pub fn new(mem: MemImage) -> Self {
        MockEnv {
            mem,
            load_latency: 2,
            ifetch_latency: 1,
            halted: false,
            wrong_path_loads: Vec::new(),
            loads: Vec::new(),
            stores: Vec::new(),
            sta_log: Vec::new(),
        }
    }
}

impl CoreEnv for MockEnv {
    fn load(&mut self, addr: Addr, bytes: u64, now: Cycle, wrong_path: bool, _pc: u32) -> MemIssue {
        if wrong_path {
            self.wrong_path_loads.push((addr, bytes));
        } else {
            self.loads.push((addr, bytes));
        }
        // Wrong-path loads to unmapped memory are dropped by real hardware;
        // correct-path ones would fault — in the mock both read as zero so
        // the pipeline keeps moving and tests can assert on the logs.
        let value = self.mem.try_read(addr, bytes).unwrap_or(0);
        MemIssue::Done {
            ready_at: now.plus(self.load_latency),
            value,
        }
    }

    fn ifetch(&mut self, _addr: Addr, now: Cycle) -> MemIssue {
        MemIssue::Done {
            ready_at: now.plus(self.ifetch_latency),
            value: 0,
        }
    }

    fn commit_store(&mut self, addr: Addr, bytes: u64, value: u64, _now: Cycle) -> bool {
        self.stores.push((addr, bytes, value));
        self.mem
            .write(addr, bytes, value)
            .expect("mock store to unmapped memory");
        true
    }

    fn sta_commit(&mut self, inst: &Inst, _regs: &ArchRegs, _now: Cycle) -> StaOutcome {
        match inst {
            Inst::Halt => {
                self.halted = true;
                StaOutcome::Stop
            }
            other => {
                self.sta_log.push(*other);
                StaOutcome::Continue
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mock_load_reads_image() {
        let mut img = MemImage::new();
        img.alloc(Addr(0x100), 64);
        img.write_u64(Addr(0x100), 77).unwrap();
        let mut env = MockEnv::new(img);
        match env.load(Addr(0x100), 8, Cycle(5), false, 0) {
            MemIssue::Done { ready_at, value } => {
                assert_eq!(ready_at, Cycle(7));
                assert_eq!(value, 77);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(env.loads.len(), 1);
    }

    #[test]
    fn mock_wrong_path_unmapped_reads_zero() {
        let mut env = MockEnv::new(MemImage::new());
        match env.load(Addr(0xdead_0000), 8, Cycle(0), true, 0) {
            MemIssue::Done { value, .. } => assert_eq!(value, 0),
            other => panic!("{other:?}"),
        }
        assert_eq!(env.wrong_path_loads.len(), 1);
    }

    #[test]
    fn mock_halt_stops() {
        let mut env = MockEnv::new(MemImage::new());
        let out = env.sta_commit(&Inst::Halt, &ArchRegs::new(), Cycle(0));
        assert_eq!(out, StaOutcome::Stop);
        assert!(env.halted);
    }
}
