//! The interval time-series: fixed columns of `u64` counters sampled every
//! N cycles, rendered as CSV (and JSONL for tooling that prefers it).
//!
//! The sampler stores raw counter values; rates (IPC, miss rate) are left to
//! the consumer so the file stays lossless and integer-exact.  The machine
//! decides *when* to sample; this type only stores and renders rows.

use std::fmt::Write as _;
use std::path::Path;

/// A fixed-schema time-series of `u64` samples.
#[derive(Clone, Debug)]
pub struct TimeSeries {
    columns: Vec<&'static str>,
    rows: Vec<Vec<u64>>,
}

impl TimeSeries {
    /// `columns` should start with `"cycle"` by convention.
    pub fn new(columns: Vec<&'static str>) -> Self {
        assert!(!columns.is_empty());
        TimeSeries {
            columns,
            rows: Vec::new(),
        }
    }

    pub fn columns(&self) -> &[&'static str] {
        &self.columns
    }

    /// Append one sample; panics if the arity does not match the schema.
    pub fn push(&mut self, row: Vec<u64>) {
        assert_eq!(row.len(), self.columns.len(), "sample arity mismatch");
        self.rows.push(row);
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn rows(&self) -> &[Vec<u64>] {
        &self.rows
    }

    /// Header line plus one line per sample.
    pub fn to_csv(&self) -> String {
        let mut out = self.columns.join(",");
        out.push('\n');
        for row in &self.rows {
            let mut first = true;
            for v in row {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "{v}");
            }
            out.push('\n');
        }
        out
    }

    /// One JSON object per line, keyed by column name.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            out.push('{');
            for (i, (name, v)) in self.columns.iter().zip(row).enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{name}\":{v}");
            }
            out.push_str("}\n");
        }
        out
    }

    pub fn write_csv_to(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_has_header_and_rows() {
        let mut ts = TimeSeries::new(vec!["cycle", "committed"]);
        ts.push(vec![100, 42]);
        ts.push(vec![200, 87]);
        assert_eq!(ts.to_csv(), "cycle,committed\n100,42\n200,87\n");
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn jsonl_keys_rows_by_column() {
        let mut ts = TimeSeries::new(vec!["cycle", "x"]);
        ts.push(vec![5, 6]);
        assert_eq!(ts.to_jsonl(), "{\"cycle\":5,\"x\":6}\n");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut ts = TimeSeries::new(vec!["cycle"]);
        ts.push(vec![1, 2]);
    }
}
