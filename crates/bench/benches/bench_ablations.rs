//! Regenerates the §7 future-work ablations (memory latency, block size,
//! branch prediction accuracy) and benchmarks one representative point.

use criterion::{criterion_group, criterion_main, Criterion};
use wec_bench::ablations;
use wec_bench::runner::{CfgKey, Runner, Suite};
use wec_core::config::ProcPreset;
use wec_cpu::bpred::BpredKind;
use wec_workloads::{run_and_verify, Bench, Scale};

fn bench(c: &mut Criterion) {
    let suite = Suite::build(Scale::SMOKE);
    let runner = Runner::without_disk_cache(&suite);
    for t in ablations::all(&runner) {
        println!("{}", t.render());
    }

    let workload = Bench::Mcf.build(Scale::SMOKE);
    let mut key = CfgKey::paper(ProcPreset::WthWpWec, 8);
    key.bpred = BpredKind::Gshare;
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("simulate mcf with gshare + wec", |b| {
        b.iter(|| run_and_verify(&workload, key.build()).unwrap().cycles)
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
