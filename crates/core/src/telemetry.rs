//! Machine-side telemetry: drains the per-component gated buffers, tags
//! thread-unit ids, and feeds the four instruments of `wec-telemetry` —
//! the structured event sink, the interval sampler, the latency histograms,
//! and the Perfetto span/counter exporter.
//!
//! The machine owns at most one [`MachineTelemetry`] (boxed, `None` when
//! telemetry is off so the per-cycle hook is a single predictable branch).
//! Once per cycle it drains each data path's [`CacheTrace`], each core's
//! `FlushTrace`, the shared L2's trace and the scheduler event log, then
//! samples counters every `sample_interval` cycles.  `finalize` closes the
//! Perfetto spans, writes the artifact files, and returns the
//! [`TelemetrySummary`] attached to the run result.
//!
//! [`CacheTrace`]: wec_telemetry::CacheTrace
//! [`TelemetrySummary`]: wec_telemetry::TelemetrySummary

use std::collections::HashMap;
use std::path::PathBuf;

use wec_common::error::{SimError, SimResult};
use wec_mem::stats::AccessKind;
use wec_telemetry::profile::{Phase, ProfileReport};
use wec_telemetry::{
    CacheEvent, EventSink, FlushRec, HistSummary, Log2Histogram, PerfettoTrace, TelemetryConfig,
    TelemetrySummary, TimeSeries, TraceEvent,
};

use crate::events::SchedEvent;

/// Columns of the interval time-series.  Every column except the three
/// trailing gauges (`wec_occupancy`, `alive_threads`, `wrong_threads`) is a
/// cumulative counter; consumers diff adjacent rows for rates (IPC, miss
/// rates) so the file stays lossless and integer-exact.
pub const SAMPLE_COLUMNS: &[&str] = &[
    "cycle",
    "committed",
    "l1d_demand_accesses",
    "l1d_demand_misses",
    "l1d_wrong_accesses",
    "l1d_side_hits",
    "l2_demand_misses",
    "l2_wrong_misses",
    "wec_occupancy",
    "alive_threads",
    "wrong_threads",
];

const COL_WEC_OCCUPANCY: usize = 8;
const COL_ALIVE_THREADS: usize = 9;
const COL_WRONG_THREADS: usize = 10;

/// All run-time telemetry state, owned by the machine.
pub(crate) struct MachineTelemetry {
    pub cfg: TelemetryConfig,
    sink: EventSink,
    /// Commits surfaced from the bounded per-core rings at the end of the
    /// run; they are older than the tail of the main stream, so they go to
    /// their own `commits.jsonl` to keep both files cycle-ordered.
    commit_sink: EventSink,
    series: TimeSeries,
    pub next_sample_at: u64,
    perfetto: PerfettoTrace,
    h_load_to_fill: Log2Histogram,
    h_fill_to_hit: Log2Histogram,
    h_wrong_life: Log2Histogram,
    /// Per-TU map of WEC block base → fill cycle, for fill-to-first-hit.
    wec_fill_at: Vec<HashMap<u64, u64>>,
    /// Thread id → cycle it was marked wrong, for wrong-thread lifetime.
    marked_wrong_at: HashMap<u64, u64>,
    /// How much of the scheduler event log has been drained.
    pub sched_cursor: usize,
    /// Open Perfetto span per TU: (thread id, in-wrong-phase).
    tu_span: Vec<Option<(u64, bool)>>,
    /// Cycle-loop self-profile, attached by the machine just before
    /// [`MachineTelemetry::finalize`] when profiling was on.
    pub profile: Option<ProfileReport>,
}

impl MachineTelemetry {
    pub fn new(cfg: TelemetryConfig, n_tus: usize) -> Self {
        let mut perfetto = PerfettoTrace::new();
        if cfg.trace_events {
            for tu in 0..n_tus {
                perfetto.thread_name(tu as u32, &format!("TU{tu}"));
            }
        }
        MachineTelemetry {
            cfg,
            sink: EventSink::new(),
            commit_sink: EventSink::new(),
            series: TimeSeries::new(SAMPLE_COLUMNS.to_vec()),
            next_sample_at: 0,
            perfetto,
            h_load_to_fill: Log2Histogram::new(),
            h_fill_to_hit: Log2Histogram::new(),
            h_wrong_life: Log2Histogram::new(),
            wec_fill_at: vec![HashMap::new(); n_tus],
            marked_wrong_at: HashMap::new(),
            sched_cursor: 0,
            tu_span: vec![None; n_tus],
            profile: None,
        }
    }

    #[inline]
    fn emit(&mut self, cycle: u64, ev: &TraceEvent) {
        if self.cfg.trace_events {
            self.sink.emit(cycle, ev);
        }
    }

    /// A load left the data path (`ready_at` is when its data arrives).
    pub fn on_load(&mut self, tu: u32, cycle: u64, addr: u64, kind: AccessKind, ready_at: u64) {
        match kind {
            AccessKind::WrongPathLoad | AccessKind::WrongThreadLoad => {
                let ev = TraceEvent::WrongLoadIssue {
                    tu,
                    addr,
                    wrong_thread: kind == AccessKind::WrongThreadLoad,
                };
                self.emit(cycle, &ev);
            }
            AccessKind::CorrectLoad => {
                self.h_load_to_fill.observe(ready_at.saturating_sub(cycle));
            }
            _ => {}
        }
    }

    /// One drained L1 data-path event, tagged with its TU.
    pub fn on_l1(&mut self, tu: u32, cycle: u64, ev: CacheEvent, addr: u64) {
        let te = match ev {
            CacheEvent::WecFill => {
                self.wec_fill_at[tu as usize].insert(addr, cycle);
                if self.cfg.trace_events {
                    self.perfetto.instant(tu, cycle, "wec_fill");
                }
                TraceEvent::WecFill { tu, addr }
            }
            CacheEvent::SideHit {
                wrong_fetched,
                prefetched,
            } => {
                if let Some(filled) = self.wec_fill_at[tu as usize].remove(&addr) {
                    self.h_fill_to_hit.observe(cycle.saturating_sub(filled));
                }
                if self.cfg.trace_events {
                    self.perfetto.instant(tu, cycle, "wec_hit");
                }
                TraceEvent::WecHit {
                    tu,
                    addr,
                    wrong_fetched,
                    prefetched,
                }
            }
            CacheEvent::VictimTransfer => TraceEvent::VictimTransfer { tu, addr },
            CacheEvent::NextLinePrefetch => TraceEvent::NextLinePrefetch { tu, addr },
            CacheEvent::MissToNext { wrong } => TraceEvent::L1Miss { tu, addr, wrong },
        };
        self.emit(cycle, &te);
    }

    /// One drained shared-L2 event (no TU attribution).
    pub fn on_l2(&mut self, cycle: u64, ev: CacheEvent, addr: u64) {
        if let CacheEvent::MissToNext { wrong } = ev {
            self.emit(cycle, &TraceEvent::L2Miss { addr, wrong });
        }
    }

    /// One drained pipeline flush from a core's branch-recovery path.
    pub fn on_flush(&mut self, tu: u32, rec: FlushRec) {
        self.emit(
            rec.cycle,
            &TraceEvent::PipelineFlush {
                tu,
                pc: rec.pc,
                new_pc: rec.new_pc,
                squashed: rec.squashed,
            },
        );
    }

    /// One scheduler event.  `head_tu` is the TU the region head occupies
    /// (only meaningful for `Begin`, whose event does not carry it).
    pub fn on_sched(&mut self, cycle: u64, ev: &SchedEvent, head_tu: Option<u32>) {
        let te = match *ev {
            SchedEvent::Begin { region, head } => TraceEvent::Begin { region, head },
            SchedEvent::ForkScheduled { parent, child, tu } => TraceEvent::Fork {
                parent,
                child,
                tu: tu as u32,
                deferred: false,
            },
            SchedEvent::ForkDeferred { parent, child, tu } => TraceEvent::Fork {
                parent,
                child,
                tu: tu as u32,
                deferred: true,
            },
            SchedEvent::ThreadStart { id, tu } => TraceEvent::ThreadStart { id, tu: tu as u32 },
            SchedEvent::Abort { id } => TraceEvent::Abort { id },
            SchedEvent::MarkedWrong { id } => TraceEvent::MarkedWrong { id },
            SchedEvent::Killed { id, tu } => TraceEvent::Killed { id, tu: tu as u32 },
            SchedEvent::WrongDied { id } => TraceEvent::WrongDied { id },
            SchedEvent::WbStart { id, words } => TraceEvent::WbStart { id, words },
            SchedEvent::Retired { id, tu } => TraceEvent::Retired { id, tu: tu as u32 },
            SchedEvent::Sequential { tu } => TraceEvent::Sequential { tu: tu as u32 },
        };
        self.emit(cycle, &te);

        match *ev {
            SchedEvent::Begin { head, .. } => {
                if let Some(tu) = head_tu {
                    self.open_span(tu, cycle, head, false);
                }
            }
            SchedEvent::ThreadStart { id, tu } => self.open_span(tu as u32, cycle, id, false),
            SchedEvent::MarkedWrong { id } => {
                self.marked_wrong_at.insert(id, cycle);
                // Re-name the thread's span so the wrong phase is visible.
                if let Some(tu) = self.find_span(id) {
                    self.close_span(tu, cycle);
                    self.open_span(tu, cycle, id, true);
                }
            }
            SchedEvent::Killed { id, tu } => {
                self.close_span_for(tu as u32, id, cycle);
                self.observe_wrong_death(id, cycle);
            }
            SchedEvent::WrongDied { id } => {
                if let Some(tu) = self.find_span(id) {
                    self.close_span(tu, cycle);
                }
                self.observe_wrong_death(id, cycle);
            }
            SchedEvent::Retired { id, tu } => self.close_span_for(tu as u32, id, cycle),
            // The head thread resumes sequential execution; its span ends.
            SchedEvent::Sequential { tu } if self.tu_span[tu].is_some() => {
                self.close_span(tu as u32, cycle);
            }
            _ => {}
        }
    }

    fn observe_wrong_death(&mut self, id: u64, cycle: u64) {
        if let Some(marked) = self.marked_wrong_at.remove(&id) {
            self.h_wrong_life.observe(cycle.saturating_sub(marked));
        }
    }

    fn find_span(&self, id: u64) -> Option<u32> {
        self.tu_span
            .iter()
            .position(|s| matches!(s, Some((i, _)) if *i == id))
            .map(|tu| tu as u32)
    }

    fn open_span(&mut self, tu: u32, cycle: u64, id: u64, wrong: bool) {
        if self.tu_span[tu as usize].is_some() {
            self.close_span(tu, cycle);
        }
        if self.cfg.trace_events {
            let name = if wrong {
                format!("T{id} (wrong)")
            } else {
                format!("T{id}")
            };
            self.perfetto.begin_span(tu, cycle, &name);
        }
        self.tu_span[tu as usize] = Some((id, wrong));
    }

    fn close_span(&mut self, tu: u32, cycle: u64) {
        if self.tu_span[tu as usize].take().is_some() && self.cfg.trace_events {
            self.perfetto.end_span(tu, cycle);
        }
    }

    /// Close the span on `tu` only if it belongs to thread `id`.
    fn close_span_for(&mut self, tu: u32, id: u64, cycle: u64) {
        if matches!(self.tu_span[tu as usize], Some((i, _)) if i == id) {
            self.close_span(tu, cycle);
        }
    }

    /// Record one interval sample (a full `SAMPLE_COLUMNS` row).
    pub fn sample(&mut self, cycle: u64, row: Vec<u64>) {
        debug_assert_eq!(row.len(), SAMPLE_COLUMNS.len());
        if self.cfg.trace_events {
            self.perfetto
                .counter(cycle, "wec_occupancy", row[COL_WEC_OCCUPANCY]);
            self.perfetto
                .counter(cycle, "alive_threads", row[COL_ALIVE_THREADS]);
            self.perfetto
                .counter(cycle, "wrong_threads", row[COL_WRONG_THREADS]);
        }
        self.series.push(row);
    }

    /// Surface one end-of-run commit record (goes to `commits.jsonl`).
    pub fn record_commit(&mut self, cycle: u64, ev: TraceEvent) {
        self.commit_sink.emit(cycle, &ev);
    }

    /// Close spans, write artifacts, and summarize.
    pub fn finalize(mut self, final_cycle: u64) -> SimResult<TelemetrySummary> {
        for tu in 0..self.tu_span.len() {
            if self.tu_span[tu].is_some() {
                self.close_span(tu as u32, final_cycle);
            }
        }

        // Host-profile counter tracks: per-phase wall nanoseconds between
        // profiler checkpoints, laid on the simulated timeline.
        let profile = self.profile.take();
        if self.cfg.trace_events {
            if let Some(report) = &profile {
                let mut prev = [0u64; wec_telemetry::profile::PHASE_COUNT];
                for &(cycle, cum) in &report.checkpoints {
                    for (i, phase) in Phase::ALL.iter().enumerate() {
                        self.perfetto.counter(
                            cycle,
                            &format!("prof_{}_ns", phase.name()),
                            cum[i] - prev[i],
                        );
                    }
                    prev = cum;
                }
            }
        }

        let hists = [
            ("load_to_fill", &self.h_load_to_fill),
            ("wec_fill_to_hit", &self.h_fill_to_hit),
            ("wrong_thread_lifetime", &self.h_wrong_life),
        ];
        let histograms: Vec<HistSummary> = hists
            .iter()
            .map(|&(name, h)| HistSummary {
                name,
                count: h.count(),
                p50: h.quantile(0.5),
                p99: h.quantile(0.99),
                max: h.max(),
            })
            .collect();

        let mut files: Vec<PathBuf> = Vec::new();
        if let Some(dir) = self.cfg.out_dir.clone() {
            let io = |e: std::io::Error| SimError::Config(format!("telemetry output: {e}"));
            std::fs::create_dir_all(&dir).map_err(io)?;
            if self.cfg.trace_events {
                let events = dir.join("events.jsonl");
                self.sink.write_to(&events).map_err(io)?;
                files.push(events);
                if self.commit_sink.total() > 0 {
                    let commits = dir.join("commits.jsonl");
                    self.commit_sink.write_to(&commits).map_err(io)?;
                    files.push(commits);
                }
            }
            if self.cfg.sample_interval > 0 {
                let ts = dir.join("timeseries.csv");
                self.series.write_csv_to(&ts).map_err(io)?;
                files.push(ts);
            }
            let mut hjson = String::from("{");
            for (i, (name, h)) in hists.iter().enumerate() {
                if i > 0 {
                    hjson.push(',');
                }
                hjson.push_str(&format!("\"{name}\":{}", h.to_json()));
            }
            hjson.push_str("}\n");
            let hpath = dir.join("histograms.json");
            std::fs::write(&hpath, hjson).map_err(io)?;
            files.push(hpath);
            if self.cfg.trace_events {
                let ppath = dir.join("trace.perfetto.json");
                self.perfetto.write_to(&ppath).map_err(io)?;
                files.push(ppath);
            }
            if let Some(report) = &profile {
                let path = dir.join("profile.json");
                std::fs::write(&path, report.to_json()).map_err(io)?;
                files.push(path);
            }
        }

        let mut events_by_kind = self.sink.counts();
        for (kind, n) in self.commit_sink.counts() {
            match events_by_kind.iter_mut().find(|(k, _)| *k == kind) {
                Some(slot) => slot.1 += n,
                None => events_by_kind.push((kind, n)),
            }
        }
        events_by_kind.sort_unstable_by_key(|&(k, _)| k);
        Ok(TelemetrySummary {
            events_total: self.sink.total() + self.commit_sink.total(),
            events_by_kind,
            samples: self.series.len() as u64,
            histograms,
            files,
            profile,
        })
    }
}
