//! Regenerates the paper's Figure 16 (printed once at SMOKE scale; see
//! `cargo run -p wec-bench --bin experiments` for the PAPER-scale version)
//! and benchmarks a representative simulation point of the sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use wec_bench::experiments;
use wec_bench::runner::{CfgKey, Runner, Suite};
use wec_core::config::ProcPreset;
use wec_workloads::{run_and_verify, Bench, Scale};

fn bench(c: &mut Criterion) {
    let suite = Suite::build(Scale::SMOKE);
    let runner = Runner::without_disk_cache(&suite);
    println!("{}", experiments::fig16(&runner).render());

    let workload = Bench::Mcf.build(Scale::SMOKE);
    let key: CfgKey = {
        let mut k = CfgKey::paper(ProcPreset::Nlp, 8);
        k.side_entries = 32;
        k
    };
    let _ = ProcPreset::Orig; // keep the import used across variants
    let mut group = c.benchmark_group("fig16");
    group.sample_size(10);
    group.bench_function("simulate mcf @ representative point", |b| {
        b.iter(|| run_and_verify(&workload, key.build()).unwrap().cycles)
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
