//! Open-loop load generator for the serve daemon.
//!
//! ```text
//! loadgen --addr HOST:PORT [--target HOST:PORT]... [--count N]
//!         [--rate JOBS_PER_SEC] [--concurrency N] [--bench NAME]
//!         [--scale N] [--spread K] [--pattern uniform|sweep-walk]
//!         [--prewarm] [--out BENCH_serve.json] [--min-rate F]
//! ```
//!
//! `--target` is `--addr`'s repeatable spelling: submissions round-robin
//! over every target given (each job is submitted *and* polled on the
//! same target, since job ids are not portable across entry points).  A
//! target may be a `wec-serve` daemon or a `wec_router` front — point
//! several targets at the routers of one cluster, or one target at a
//! single router, and the report stays comparable to a single-node run.
//! The report always carries a per-target split (`targets`: completed /
//! failed / rejected / spec-hit counts and latency quantiles per entry
//! point), and when any target answers `/stats` with a
//! `wec-router-stats-v1` document, a `cluster` record summarizing the
//! conserved cluster roll-up (backend count, routing counters, cache
//! split, throughput) rides along in the output.
//!
//! Sends `--count` `POST /jobs` submissions at a scheduled `--rate`,
//! cycling over `--spread` distinct configurations (side-structure
//! geometry variations of the paper machine), and polls each returned job
//! to a terminal state.  `--pattern sweep-walk` replaces the uniform
//! cycle with per-connection walks along the sorted side-entries axis
//! (each connection pins one `l1_ways`, ping-pongs ±1 along the axis, and
//! takes a deterministic long jump every 7th step) — the access shape the
//! daemon's `--speculate` predictor is built for, so the report's
//! `spec_hit_rate` measures how many demand jobs were answered from
//! already-speculated results (`source:"spec"`).  The generator is *open-loop*: request `i` is due
//! at `t0 + i/rate` regardless of how the daemon is keeping up, and
//! latency is measured from that due time — so a daemon that falls behind
//! shows queueing delay instead of hiding it (closed-loop generators
//! coordinate with the victim and under-report).
//!
//! `--prewarm` first submits each distinct configuration once and waits
//! for it (cold sims), so the timed phase measures the dedup/memo path —
//! the serving-throughput number the acceptance gate cares about.
//! Results (throughput, latency percentiles, outcome counts) go to
//! `--out` as a `wec-bench-serve-v1` document and to stdout.  Latency is
//! collected in the same [`wec_telemetry::hist::Log2Histogram`] the
//! daemon's `/metrics` endpoint uses, and the full histogram rides along
//! in the report (`latency_hist`) — so client-observed and
//! server-observed distributions compare bucket for bucket.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use wec_telemetry::hist::Log2Histogram;
use wec_telemetry::json::{self, Json};

fn http(addr: &str, method: &str, path: &str, body: Option<&str>) -> io::Result<(u16, String)> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.set_write_timeout(Some(Duration::from_secs(60)))?;
    let mut stream = stream;
    let mut req = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n");
    if let Some(b) = body {
        req.push_str(&format!(
            "Content-Type: application/json\r\nContent-Length: {}\r\n",
            b.len()
        ));
    }
    req.push_str("\r\n");
    stream.write_all(req.as_bytes())?;
    if let Some(b) = body {
        stream.write_all(b.as_bytes())?;
    }
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    let (head, payload) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header terminator"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    Ok((status, payload.to_string()))
}

/// Poll `GET /jobs/<id>` until terminal; returns the final state name and
/// the result source (`cold`/`disk`/`mem`/`spec`, `none` while absent).
fn poll_terminal(addr: &str, id: u64) -> io::Result<(String, String)> {
    loop {
        let (status, body) = http(addr, "GET", &format!("/jobs/{id}"), None)?;
        if status != 200 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("GET /jobs/{id} -> {status}"),
            ));
        }
        let v = json::parse(&body).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let state = v
            .get("state")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string();
        if state == "done" || state == "failed" || state == "cancelled" {
            let source = v
                .get("source")
                .and_then(Json::as_str)
                .unwrap_or("none")
                .to_string();
            return Ok((state, source));
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn record_id_state(body: &str) -> Option<(u64, String, String)> {
    let v = json::parse(body).ok()?;
    Some((
        v.get("id")?.as_u64()?,
        v.get("state")?.as_str()?.to_string(),
        v.get("source")
            .and_then(Json::as_str)
            .unwrap_or("none")
            .to_string(),
    ))
}

/// Per-entry-point accounting, so a sharded run shows where the latency
/// lives (one slow backend hides inside cluster-wide quantiles).
struct TargetTally {
    completed: AtomicU64,
    failed: AtomicU64,
    rejected: AtomicU64,
    spec_hits: AtomicU64,
    latencies: Mutex<Log2Histogram>,
}

impl TargetTally {
    fn new() -> TargetTally {
        TargetTally {
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            spec_hits: AtomicU64::new(0),
            latencies: Mutex::new(Log2Histogram::new()),
        }
    }
}

/// If any target's `/stats` is a router document, compact its conserved
/// cluster roll-up into a `cluster` record for the report.
fn cluster_record(targets: &[String]) -> Option<String> {
    for t in targets {
        let Ok((200, body)) = http(t, "GET", "/stats", None) else {
            continue;
        };
        if wec_telemetry::schema::validate_router_stats_json(&body).is_err() {
            continue;
        }
        let v = json::parse(&body).ok()?;
        let n = |path: &[&str]| -> u64 {
            let mut cur = &v;
            for p in path {
                match cur.get(p) {
                    Some(next) => cur = next,
                    None => return 0,
                }
            }
            cur.as_u64().unwrap_or(0)
        };
        let backends = v
            .get("backends")
            .and_then(Json::as_array)
            .map(|b| b.len())
            .unwrap_or(0);
        let scraped = v
            .get("backends")
            .and_then(Json::as_array)
            .map(|b| b.iter().filter(|e| e.get("stats").is_some()).count())
            .unwrap_or(0);
        let jobs_per_sec = v
            .get("cluster")
            .and_then(|c| c.get("throughput"))
            .and_then(|t| t.get("jobs_per_sec"))
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        return Some(format!(
            "{{\"scraped_from\": \"{t}\", \"backends\": {backends}, \"scraped\": {scraped}, \
             \"router\": {{\"proxied\": {}, \"retries\": {}, \"resharded\": {}, \
             \"rejected\": {}, \"hints_sent\": {}, \"hints_accepted\": {}}}, \
             \"jobs\": {{\"submitted\": {}, \"deduped\": {}, \"completed\": {}, \"failed\": {}}}, \
             \"cache\": {{\"cold\": {}, \"disk_hits\": {}, \"mem_hits\": {}, \"spec_hits\": {}}}, \
             \"jobs_per_sec\": {jobs_per_sec:.3}}}",
            n(&["router", "proxied"]),
            n(&["router", "retries"]),
            n(&["router", "resharded"]),
            n(&["router", "rejected"]),
            n(&["router", "hints_sent"]),
            n(&["router", "hints_accepted"]),
            n(&["cluster", "jobs", "submitted"]),
            n(&["cluster", "jobs", "deduped"]),
            n(&["cluster", "jobs", "completed"]),
            n(&["cluster", "jobs", "failed"]),
            n(&["cluster", "cache", "cold"]),
            n(&["cluster", "cache", "disk_hits"]),
            n(&["cluster", "cache", "mem_hits"]),
            n(&["cluster", "cache", "spec_hits"]),
        ));
    }
    None
}

fn main() {
    let mut targets: Vec<String> = Vec::new();
    let mut count: usize = 200;
    let mut rate: f64 = 100.0;
    let mut concurrency: usize = 8;
    let mut bench = "181.mcf".to_string();
    let mut scale: u32 = 1;
    let mut spread: usize = 4;
    let mut pattern = "uniform".to_string();
    let mut prewarm = false;
    let mut out = "BENCH_serve.json".to_string();
    let mut min_rate: f64 = 0.0;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{what} requires a value"))
                .clone()
        };
        match a.as_str() {
            "--addr" => targets.push(value("--addr")),
            "--target" => targets.push(value("--target")),
            "--count" => count = value("--count").parse().expect("--count N"),
            "--rate" => rate = value("--rate").parse().expect("--rate F"),
            "--concurrency" => {
                concurrency = value("--concurrency").parse().expect("--concurrency N")
            }
            "--bench" => bench = value("--bench"),
            "--scale" => scale = value("--scale").parse().expect("--scale N"),
            "--spread" => spread = value("--spread").parse().expect("--spread K"),
            "--pattern" => pattern = value("--pattern"),
            "--prewarm" => prewarm = true,
            "--out" => out = value("--out"),
            "--min-rate" => min_rate = value("--min-rate").parse().expect("--min-rate F"),
            other => panic!("unknown argument {other:?}"),
        }
    }
    assert!(
        !targets.is_empty(),
        "loadgen requires --addr or --target HOST:PORT"
    );
    for (i, t) in targets.iter().enumerate() {
        assert!(
            !targets[..i].contains(t),
            "duplicate target {t:?} would double its share of the load"
        );
    }
    assert!(rate > 0.0 && count > 0 && concurrency > 0, "bad load shape");
    assert!(
        (1..=24).contains(&spread),
        "--spread must be 1..=24 distinct configurations"
    );
    assert!(
        pattern == "uniform" || pattern == "sweep-walk",
        "--pattern must be uniform or sweep-walk"
    );
    let sweep_walk = pattern == "sweep-walk";

    // The distinct configuration mix: side-structure entry counts crossed
    // with L1 associativity, the same axes the replay sweeps use.
    const SIDES: [u8; 8] = [8, 16, 32, 64, 2, 4, 24, 128];
    const WAYS: [u8; 3] = [1, 2, 4];
    let bodies: Vec<String> = (0..spread)
        .map(|i| {
            format!(
                "{{\"bench\":\"{bench}\",\"scale\":{scale},\"cfg\":{{\"side_entries\":{},\"l1_ways\":{}}}}}",
                SIDES[i % SIDES.len()],
                WAYS[(i / SIDES.len()) % WAYS.len()]
            )
        })
        .collect();

    if prewarm {
        eprintln!("prewarming {spread} configuration(s) on {bench} at scale {scale}…");
        let t = Instant::now();
        for (j, body) in bodies.iter().enumerate() {
            let addr = &targets[j % targets.len()];
            let (status, resp) = http(addr, "POST", "/jobs", Some(body)).expect("prewarm POST");
            assert_eq!(status, 200, "prewarm rejected: {resp}");
            let (id, state, _source) = record_id_state(&resp).expect("prewarm: bad record");
            if state != "done" {
                let (state, _source) = poll_terminal(addr, id).expect("prewarm poll");
                assert_eq!(state, "done", "prewarm job {id} failed");
            }
        }
        eprintln!("prewarm done in {:.1}s", t.elapsed().as_secs_f64());
    }

    eprintln!(
        "open-loop: {count} jobs at {rate:.0}/s over {concurrency} connections \
         to {} target(s) ({spread} distinct cfgs, {pattern} pattern)…",
        targets.len()
    );
    let next = AtomicUsize::new(0);
    let tallies: Vec<TargetTally> = targets.iter().map(|_| TargetTally::new()).collect();
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for tid in 0..concurrency {
            let (targets, bench, bodies) = (&targets, &bench, &bodies);
            let (next, tallies) = (&next, &tallies);
            s.spawn(move || {
                // The sweep-walk state: this connection pins one L1
                // associativity and ping-pongs ±1 along the sorted
                // side-entries axis, with a deterministic long jump every
                // 7th step so the predictor's learned-transition table has
                // something non-trivial to earn.
                const WALK_SIDES: [u8; 8] = [2, 4, 8, 16, 24, 32, 64, 128];
                let walk_ways = WAYS[tid % WAYS.len()];
                let mut idx = tid % WALK_SIDES.len();
                let mut dir: isize = 1;
                let mut step: usize = 0;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        return;
                    }
                    // Round-robin over entry points; the job is polled on
                    // the target that accepted it (ids are per-entry-point).
                    let which = i % targets.len();
                    let addr = &targets[which];
                    let tally = &tallies[which];
                    let due = Duration::from_secs_f64(i as f64 / rate);
                    if let Some(wait) = due.checked_sub(t0.elapsed()) {
                        std::thread::sleep(wait);
                    }
                    let body = if sweep_walk {
                        let b = format!(
                            "{{\"bench\":\"{bench}\",\"scale\":{scale},\"cfg\":{{\"side_entries\":{},\"l1_ways\":{walk_ways}}}}}",
                            WALK_SIDES[idx]
                        );
                        step += 1;
                        if step % 7 == 0 {
                            idx = (idx + 5) % WALK_SIDES.len();
                        } else {
                            if idx == 0 {
                                dir = 1;
                            } else if idx == WALK_SIDES.len() - 1 {
                                dir = -1;
                            }
                            idx = (idx as isize + dir) as usize;
                        }
                        b
                    } else {
                        bodies[i % bodies.len()].clone()
                    };
                    let outcome = http(addr, "POST", "/jobs", Some(&body)).and_then(
                        |(status, resp)| match status {
                            200 => {
                                let (id, state, source) =
                                    record_id_state(&resp).ok_or_else(|| {
                                        io::Error::new(io::ErrorKind::InvalidData, "bad record")
                                    })?;
                                if state == "done" {
                                    Ok(("done".to_string(), source))
                                } else {
                                    poll_terminal(addr, id)
                                }
                            }
                            503 => Ok(("rejected".to_string(), String::new())),
                            other => Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!("POST /jobs -> {other}: {resp}"),
                            )),
                        },
                    );
                    match &outcome {
                        Ok((state, source)) if state == "done" => {
                            let lat = t0.elapsed().saturating_sub(due);
                            tally
                                .latencies
                                .lock()
                                .unwrap()
                                .observe(lat.as_micros() as u64);
                            tally.completed.fetch_add(1, Ordering::Relaxed);
                            if source == "spec" {
                                tally.spec_hits.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Ok((state, _)) if state == "rejected" => {
                            tally.rejected.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(_) => {
                            tally.failed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            eprintln!("loadgen: job {i}: {e}");
                            tally.failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let wall_s = t0.elapsed().as_secs_f64();
    let mut completed = 0u64;
    let mut failed = 0u64;
    let mut rejected = 0u64;
    let mut spec_hits = 0u64;
    let mut hist = Log2Histogram::new();
    let mut targets_json = String::from("[");
    for (i, tally) in tallies.iter().enumerate() {
        let (c, f, r, sp) = (
            tally.completed.load(Ordering::Relaxed),
            tally.failed.load(Ordering::Relaxed),
            tally.rejected.load(Ordering::Relaxed),
            tally.spec_hits.load(Ordering::Relaxed),
        );
        let h = tally.latencies.lock().unwrap();
        completed += c;
        failed += f;
        rejected += r;
        spec_hits += sp;
        hist.merge(&h);
        if i > 0 {
            targets_json.push_str(", ");
        }
        targets_json.push_str(&format!(
            "{{\"addr\": \"{}\", \"completed\": {c}, \"failed\": {f}, \"rejected\": {r}, \
             \"spec_hits\": {sp}, \"latency_us\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}, \
             \"max\": {}}}}}",
            targets[i],
            h.quantile(0.50),
            h.quantile(0.90),
            h.quantile(0.99),
            h.max(),
        ));
    }
    targets_json.push(']');
    let jobs_per_sec = completed as f64 / wall_s.max(1e-9);
    let spec_hit_rate = if completed > 0 {
        spec_hits as f64 / completed as f64
    } else {
        0.0
    };
    // Quantiles off the log2 histogram (good to a factor of two, same
    // resolution the daemon reports); min/max are exact.
    let (p50, p90, p99, max) = (
        hist.quantile(0.50),
        hist.quantile(0.90),
        hist.quantile(0.99),
        hist.max(),
    );

    // A router entry point contributes the cluster's conserved roll-up.
    let cluster = cluster_record(&targets);
    let mut doc = format!(
        "{{\n  \"schema\": \"wec-bench-serve-v1\",\n  \"bench\": \"{bench}\",\n  \
         \"scale\": {scale},\n  \"spread\": {spread},\n  \"pattern\": \"{pattern}\",\n  \
         \"count\": {count},\n  \
         \"rate\": {rate:.1},\n  \"concurrency\": {concurrency},\n  \"prewarm\": {prewarm},\n  \
         \"wall_s\": {wall_s:.3},\n  \"completed\": {completed},\n  \"failed\": {failed},\n  \
         \"rejected\": {rejected},\n  \"spec_hits\": {spec_hits},\n  \
         \"spec_hit_rate\": {spec_hit_rate:.4},\n  \"jobs_per_sec\": {jobs_per_sec:.1},\n  \
         \"latency_us\": {{\"p50\": {p50}, \"p90\": {p90}, \"p99\": {p99}, \"max\": {max}}},\n  \
         \"latency_hist\": {},\n  \"targets\": {targets_json}",
        hist.to_json()
    );
    if let Some(c) = &cluster {
        doc.push_str(&format!(",\n  \"cluster\": {c}"));
    }
    doc.push_str("\n}\n");
    std::fs::write(&out, &doc).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!(
        "{completed}/{count} completed ({failed} failed, {rejected} rejected, \
         {spec_hits} spec hits) in {wall_s:.2}s \
         -> {jobs_per_sec:.1} jobs/s; latency p50 {p50}us p90 {p90}us p99 {p99}us max {max}us"
    );
    println!("wrote {out}");
    if min_rate > 0.0 && (jobs_per_sec < min_rate || failed > 0) {
        eprintln!(
            "FAIL: sustained {jobs_per_sec:.1} jobs/s with {failed} failures \
             (floor {min_rate:.1} jobs/s, 0 failures)"
        );
        std::process::exit(1);
    }
}
