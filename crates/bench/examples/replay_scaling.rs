//! Measure parallel replay scaling for `BENCH_trace.json`'s `parallel`
//! record: capture every benchmark once, decode each trace into a shared
//! [`TraceSlab`], then time the 48-point WEC geometry sweep at 1/2/4/8
//! replay workers.  Points are replayed cold (no result store) so the
//! numbers are pure engine throughput; `bench_guard --trace` compares a
//! fresh run of this example against the checked-in baseline.
//!
//! ```text
//! cargo run --release -p wec-bench --example replay_scaling \
//!     [-- --scale N] [--only bench] [--jobs 1,2,4,8]
//! ```

use std::time::Instant;

use wec_bench::tracerun::{capture_key, replay_sweep, sweep_keys};
use wec_trace::{capture_run, CaptureMeta, TraceSlab};
use wec_workloads::{Bench, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale { units: 1 };
    let mut only: Option<String> = None;
    let mut job_counts = vec![1usize, 2, 4, 8];
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = Scale {
                    units: it.next().and_then(|s| s.parse().ok()).expect("--scale N"),
                }
            }
            "--only" => only = it.next().cloned(),
            "--jobs" => {
                job_counts = it
                    .next()
                    .expect("--jobs N,N,...")
                    .split(',')
                    .map(|s| s.trim().parse().expect("--jobs N,N,..."))
                    .collect();
                assert!(
                    !job_counts.is_empty() && job_counts.iter().all(|&n| n > 0),
                    "--jobs needs positive worker counts"
                );
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    let benches: Vec<Bench> = match &only {
        None => Bench::ALL.to_vec(),
        Some(f) => Bench::ALL
            .iter()
            .copied()
            .filter(|b| b.name().contains(f.as_str()))
            .collect(),
    };
    assert!(!benches.is_empty(), "--only {only:?} matches no benchmark");
    let keys = sweep_keys();
    let base = capture_key();
    let max_jobs = job_counts.iter().copied().max().unwrap_or(1);
    eprintln!(
        "parallel replay scaling: {} benchmark(s) x {} points at scale {}, jobs {job_counts:?}",
        benches.len(),
        keys.len(),
        scale.units
    );

    // Capture once per benchmark and decode each trace into a slab (the
    // decoder pool gets the widest worker count under test).
    let mut slabs = Vec::new();
    let mut records = 0u64;
    let t_cap = Instant::now();
    for bench in &benches {
        let w = bench.build(scale);
        let meta = CaptureMeta {
            bench: w.name.to_string(),
            scale_units: scale.units,
            cfg_label: base.label(),
        };
        let (_, trace) =
            capture_run(&w, base.build(), &meta).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        records += trace.header.total_records;
        slabs
            .push(TraceSlab::build(&trace, max_jobs).unwrap_or_else(|e| panic!("{}: {e}", w.name)));
    }
    let capture_s = t_cap.elapsed().as_secs_f64();
    let per_sweep_records = records * keys.len() as u64;
    eprintln!(
        "captured + decoded {records} records in {capture_s:.2}s; each sweep drives {per_sweep_records} records"
    );

    // Time the full sweep (every benchmark x every point, all cold) at
    // each worker count.  jobs=1 is the single-thread baseline the
    // scaling column is relative to.
    let mut rows = Vec::new();
    let mut single_s = 0.0f64;
    let mut best_s = f64::INFINITY;
    let mut best_rps = 0.0f64;
    for &jobs in &job_counts {
        let t = Instant::now();
        for slab in &slabs {
            let results = replay_sweep(slab, &keys, None, jobs);
            assert_eq!(results.len(), keys.len());
        }
        let sweep_s = t.elapsed().as_secs_f64();
        let rps = per_sweep_records as f64 / sweep_s.max(1e-9);
        if jobs == 1 {
            single_s = sweep_s;
        }
        let scaling = if single_s > 0.0 {
            single_s / sweep_s
        } else {
            1.0
        };
        best_s = best_s.min(sweep_s);
        best_rps = best_rps.max(rps);
        eprintln!(
            "jobs {jobs:>2}: sweep {sweep_s:.2}s, {rps:.0} records/s, {scaling:.2}x vs single-thread"
        );
        rows.push(format!(
            "{{\"jobs\": {jobs}, \"sweep_s\": {sweep_s:.3}, \"records_per_s\": {rps:.0}, \
             \"scaling\": {scaling:.2}}}"
        ));
    }
    println!(
        "{{\"scale_units\": {}, \"benches\": {}, \"points_per_bench\": {}, \
         \"records\": {records}, \"capture_decode_s\": {capture_s:.2}, \"jobs\": [{}], \
         \"aggregate_records_per_s\": {best_rps:.0}, \"best_sweep_s\": {best_s:.3}}}",
        scale.units,
        benches.len(),
        keys.len(),
        rows.join(", ")
    );
}
