//! The backend ring: rendezvous hashing plus per-backend health state.
//!
//! Rendezvous (highest-random-weight) hashing gives every `(job key,
//! backend)` pair a deterministic weight; the routable backend with the
//! highest weight owns the key.  Unlike a mod-N ring, removing a backend
//! only moves the keys it owned — every other key keeps its owner, which
//! is what keeps cross-node dedup and warm memos intact through a node
//! death.  The fail-over order for a key is simply the remaining
//! candidates in descending weight, so two routers (or one router before
//! and after a crash) always agree on where a key lives.
//!
//! Weights hash the backend's *address* (the stable configuration input),
//! not its display id: the id is adopted lazily from the backend's own
//! `--backend-id` at first stats scrape and must not reshuffle the ring.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::{client, lock};

/// Health of one backend, as last observed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BackendState {
    /// Answering `/healthz` and accepting jobs.
    Healthy,
    /// Alive but refusing new jobs (it announced `"draining":true` or
    /// answered a submit with `X-Wec-Draining`); its keys re-shard.
    Draining,
    /// `dead_after` consecutive failures; skipped until a probe succeeds.
    Dead,
}

impl BackendState {
    pub fn name(self) -> &'static str {
        match self {
            BackendState::Healthy => "healthy",
            BackendState::Draining => "draining",
            BackendState::Dead => "dead",
        }
    }

    fn from_u8(v: u8) -> BackendState {
        match v {
            0 => BackendState::Healthy,
            1 => BackendState::Draining,
            _ => BackendState::Dead,
        }
    }
}

/// One backend: its configured address, its display identity (adopted
/// from the backend's own `--backend-id` once scraped), and its observed
/// health.  All mutation is atomic — the health thread, the proxy
/// threads, and the stats scraper touch this concurrently.
pub struct Backend {
    pub addr: String,
    /// Display id; starts as `addr`, replaced by the backend's announced
    /// `backend_id` at first successful stats scrape.
    id: Mutex<String>,
    state: AtomicU8,
    consecutive_failures: AtomicU32,
    /// Jobs this router proxied to this backend (successful submits).
    pub routed: AtomicU64,
}

impl Backend {
    pub fn new(addr: &str) -> Backend {
        Backend {
            addr: addr.to_string(),
            id: Mutex::new(addr.to_string()),
            state: AtomicU8::new(0),
            consecutive_failures: AtomicU32::new(0),
            routed: AtomicU64::new(0),
        }
    }

    pub fn id(&self) -> String {
        lock(&self.id).clone()
    }

    /// Adopt the identity the backend itself announces (non-empty only).
    pub fn adopt_id(&self, id: &str) {
        if !id.is_empty() {
            *lock(&self.id) = id.to_string();
        }
    }

    pub fn state(&self) -> BackendState {
        BackendState::from_u8(self.state.load(Ordering::SeqCst))
    }

    pub fn failures(&self) -> u32 {
        self.consecutive_failures.load(Ordering::SeqCst)
    }

    /// A submit may be routed here.
    pub fn routable(&self) -> bool {
        self.state() == BackendState::Healthy
    }

    /// A successful exchange: clear the failure streak and resurrect a
    /// dead backend.  A draining backend stays draining — it answers
    /// probes fine but must not take new jobs.
    pub fn record_success(&self) {
        self.consecutive_failures.store(0, Ordering::SeqCst);
        let _ = self.state.compare_exchange(
            2, // Dead
            0, // Healthy
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
    }

    /// A failed exchange (connect error, timeout, malformed response):
    /// after `dead_after` in a row the backend is declared dead.
    pub fn record_failure(&self, dead_after: u32) {
        let n = self.consecutive_failures.fetch_add(1, Ordering::SeqCst) + 1;
        if n >= dead_after {
            self.state.store(2, Ordering::SeqCst);
        }
    }

    pub fn mark_draining(&self) {
        self.state.store(1, Ordering::SeqCst);
    }

    fn mark_healthy(&self) {
        self.state.store(0, Ordering::SeqCst);
    }
}

/// FNV-1a, the workspace's stock stable hash.
fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The rendezvous weight of `(key, addr)`.
pub fn weight(key: &str, addr: &str) -> u64 {
    let h = fnv1a(0xcbf2_9ce4_8422_2325, key.as_bytes());
    let h = fnv1a(h, b"|");
    fnv1a(h, addr.as_bytes())
}

/// The backend table.  The membership is fixed at startup (configuration
/// defines the ring); only health states change at runtime.
pub struct Ring {
    pub backends: Vec<Backend>,
}

impl Ring {
    /// Build the ring; duplicate addresses are rejected (they would split
    /// one node's keys across two identical entries).
    pub fn new(addrs: &[String]) -> Result<Ring, String> {
        if addrs.is_empty() {
            return Err("at least one backend is required".to_string());
        }
        for (i, a) in addrs.iter().enumerate() {
            if a.is_empty() {
                return Err("backend address must be non-empty".to_string());
            }
            if addrs[..i].contains(a) {
                return Err(format!("duplicate backend address {a:?}"));
            }
        }
        Ok(Ring {
            backends: addrs.iter().map(|a| Backend::new(a)).collect(),
        })
    }

    /// Every backend index in fail-over order for `key`: descending
    /// rendezvous weight, index as the (unreachable in practice)
    /// tiebreak.  Health is *not* consulted — callers walk the order and
    /// skip unroutable entries, so the sequence is stable while states
    /// flap.
    pub fn candidates(&self, key: &str) -> Vec<usize> {
        let mut order: Vec<(u64, usize)> = self
            .backends
            .iter()
            .enumerate()
            .map(|(i, b)| (weight(key, &b.addr), i))
            .collect();
        order.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        order.into_iter().map(|(_, i)| i).collect()
    }

    /// The routable owner of `key`, if any backend is currently routable.
    pub fn owner(&self, key: &str) -> Option<usize> {
        self.candidates(key)
            .into_iter()
            .find(|&i| self.backends[i].routable())
    }

    /// One health pass: probe every backend's `/healthz` and fold the
    /// answers into the ring.  A healthy answer with `"draining":true`
    /// marks the backend draining; a healthy answer without it clears a
    /// previous draining mark (the daemon restarted).
    pub fn health_pass(&self, timeout: Duration, dead_after: u32) {
        for b in &self.backends {
            match client::request(&b.addr, "GET", "/healthz", None, timeout) {
                Ok(resp) if resp.status == 200 => {
                    b.record_success();
                    let draining = resp
                        .body_utf8()
                        .map(|t| t.contains("\"draining\":true"))
                        .unwrap_or(false);
                    if draining {
                        b.mark_draining();
                    } else if b.state() == BackendState::Draining {
                        b.mark_healthy();
                    }
                }
                _ => b.record_failure(dead_after),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring3() -> Ring {
        Ring::new(&[
            "127.0.0.1:8501".to_string(),
            "127.0.0.1:8502".to_string(),
            "127.0.0.1:8503".to_string(),
        ])
        .unwrap()
    }

    #[test]
    fn membership_is_validated() {
        assert!(Ring::new(&[]).is_err());
        assert!(Ring::new(&["".to_string()]).is_err());
        assert!(Ring::new(&["a:1".to_string(), "a:1".to_string()]).is_err());
    }

    #[test]
    fn candidate_order_is_deterministic_and_complete() {
        let r = ring3();
        for key in ["sim|181.mcf|1|x", "sim|164.gzip|2|y", "replay|t|z"] {
            let a = r.candidates(key);
            let b = ring3().candidates(key);
            assert_eq!(a, b, "{key}");
            let mut sorted = a.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2], "every backend appears once");
        }
    }

    #[test]
    fn keys_spread_across_backends() {
        let r = ring3();
        let mut owned = [0u32; 3];
        for i in 0..300 {
            let key = format!("sim|bench{i}|1|cfg");
            owned[r.candidates(&key)[0]] += 1;
        }
        for (i, n) in owned.iter().enumerate() {
            assert!(*n > 30, "backend {i} owns only {n}/300 keys: {owned:?}");
        }
    }

    #[test]
    fn removing_a_backend_only_moves_its_own_keys() {
        let r = ring3();
        for i in 0..100 {
            let key = format!("sim|bench{i}|1|cfg");
            let order = r.candidates(&key);
            if order[0] != 2 {
                // Kill backend 2: keys it did not own keep their owner.
                r.backends[2].record_failure(1);
                assert_eq!(r.owner(&key), Some(order[0]), "{key}");
                r.backends[2].record_success();
            }
        }
    }

    #[test]
    fn owner_skips_draining_and_dead_in_failover_order() {
        let r = ring3();
        let key = "sim|181.mcf|1|cfg";
        let order = r.candidates(key);
        assert_eq!(r.owner(key), Some(order[0]));
        r.backends[order[0]].mark_draining();
        assert_eq!(r.owner(key), Some(order[1]));
        r.backends[order[1]].record_failure(1);
        assert_eq!(r.owner(key), Some(order[2]));
        r.backends[order[2]].record_failure(1);
        assert_eq!(r.owner(key), None);
        // Resurrection: one success re-opens a dead backend.
        r.backends[order[1]].record_success();
        assert_eq!(r.owner(key), Some(order[1]));
    }

    #[test]
    fn death_requires_consecutive_failures() {
        let b = Backend::new("127.0.0.1:1");
        b.record_failure(3);
        b.record_failure(3);
        assert_eq!(b.state(), BackendState::Healthy);
        b.record_success();
        b.record_failure(3);
        b.record_failure(3);
        assert_eq!(b.state(), BackendState::Healthy, "streak was reset");
        b.record_failure(3);
        assert_eq!(b.state(), BackendState::Dead);
    }

    #[test]
    fn ids_start_as_the_address_and_adopt_announcements() {
        let b = Backend::new("127.0.0.1:9");
        assert_eq!(b.id(), "127.0.0.1:9");
        b.adopt_id("");
        assert_eq!(b.id(), "127.0.0.1:9", "empty announcements are ignored");
        b.adopt_id("node-a");
        assert_eq!(b.id(), "node-a");
    }
}
