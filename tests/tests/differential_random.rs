//! Differential testing with randomly generated superthreaded programs.
//!
//! A generator builds random-but-well-formed thread-pipelined loops
//! (random ALU dataflow, random in-bounds loads/stores, random
//! target-store recurrences, random branchy diamonds), computes the result
//! with a host-side interpreter, and checks that every processor
//! configuration reproduces it exactly.  This explores corners of the
//! scheduler and pipeline no hand-written workload reaches.

use wec_common::SplitMix64;
use wec_core::config::ProcPreset;
use wec_core::machine::Machine;
use wec_isa::reg::Reg;
use wec_isa::{Program, ProgramBuilder};

/// A randomly shaped parallel-region program and its expected output.
struct GenProgram {
    program: Program,
    out_addr: wec_common::ids::Addr,
    expected: Vec<u64>,
}

/// Build a random program: one parallel region over `n` iterations, each
/// iteration applying a random (but fixed per program) dataflow to its
/// index and a data array, plus an optional serializing accumulator.
fn generate(seed: u64) -> GenProgram {
    let mut rng = SplitMix64::new(seed);
    let n = 4 + rng.below(20) as i64;
    let data_len = 64u64;
    let data: Vec<u64> = (0..data_len).map(|_| rng.next_u64() >> 8).collect();
    let use_accumulator = rng.chance(0.5);
    let diamond = rng.chance(0.7);
    // Random per-iteration ALU recipe: a sequence of (op, operand-choice).
    let steps: Vec<(u8, u8)> = (0..3 + rng.below(5))
        .map(|_| (rng.below(6) as u8, rng.below(3) as u8))
        .collect();

    // ---------- host reference ----------
    let mut expected = vec![0u64; n as usize + 1];
    let mut acc_host = 0u64;
    for my in 0..n as u64 {
        let d = data[(my % data_len) as usize];
        let mut v = my.wrapping_mul(31).wrapping_add(7);
        for &(op, sel) in &steps {
            let operand = match sel {
                0 => d,
                1 => my,
                _ => 0x9e37_79b9,
            };
            v = match op {
                0 => v.wrapping_add(operand),
                1 => v ^ operand,
                2 => v.wrapping_mul(operand | 1),
                3 => v.wrapping_sub(operand),
                4 => v | (operand >> 3),
                _ => v.rotate_left(7) ^ operand,
            };
        }
        if diamond {
            if v & 1 == 1 {
                v = v.wrapping_add(data[(v % data_len) as usize]);
            } else {
                v ^= 0x5555;
            }
        }
        expected[my as usize] = v;
        if use_accumulator {
            acc_host = acc_host.wrapping_add(v);
        }
    }
    expected[n as usize] = acc_host;

    // ---------- guest program ----------
    let mut b = ProgramBuilder::new(format!("rand{seed}"));
    let data_base = b.alloc_u64s(&data);
    let out = b.alloc_zeroed_u64s(n as u64 + 1);
    let acc_cell = b.alloc_zeroed_u64s(1);
    let _slack = b.alloc_bytes(4096, 64);
    let (i, my, n_r, db, ob, accb, v, t0, t1) = (
        Reg(1),
        Reg(3),
        Reg(22),
        Reg(20),
        Reg(21),
        Reg(19),
        Reg(4),
        Reg(5),
        Reg(6),
    );
    b.la(db, data_base);
    b.la(ob, out);
    b.la(accb, acc_cell);
    b.li(n_r, n);
    b.li(i, 0);
    b.begin(1);
    b.label("body");
    b.mv(my, i);
    b.addi(i, i, 1);
    b.fork(&[i], "body");
    if use_accumulator {
        b.tsannounce(accb, 0);
    }
    b.tsagdone();
    // d = data[my % 64]
    b.andi(t0, my, (data_len - 1) as i32);
    b.slli(t0, t0, 3);
    b.add(t0, db, t0);
    b.ld(t0, t0, 0);
    // v = my*31 + 7
    b.alui(wec_isa::inst::AluOp::Mul, v, my, 31);
    b.addi(v, v, 7);
    for &(op, sel) in &steps {
        match sel {
            0 => b.mv(t1, t0),
            1 => b.mv(t1, my),
            _ => b.li(t1, 0x9e37_79b9),
        };
        match op {
            0 => b.add(v, v, t1),
            1 => b.xor(v, v, t1),
            2 => {
                b.alui(wec_isa::inst::AluOp::Or, t1, t1, 1);
                b.mul(v, v, t1)
            }
            3 => b.sub(v, v, t1),
            4 => {
                b.srli(t1, t1, 3);
                b.or(v, v, t1)
            }
            _ => {
                // v = rotl(v,7) ^ operand
                b.slli(Reg(7), v, 7);
                b.srli(v, v, 57);
                b.or(v, v, Reg(7));
                b.xor(v, v, t1)
            }
        };
    }
    if diamond {
        b.andi(t1, v, 1);
        b.beq(t1, Reg::ZERO, "even");
        // v += data[v % 64]
        b.li(t1, (data_len - 1) as i64);
        b.and(t1, v, t1);
        b.slli(t1, t1, 3);
        b.add(t1, db, t1);
        b.ld(t1, t1, 0);
        b.add(v, v, t1);
        b.j("join");
        b.label("even");
        b.alui(wec_isa::inst::AluOp::Xor, v, v, 0x5555);
        b.label("join");
    }
    // out[my] = v
    b.slli(t0, my, 3);
    b.add(t0, ob, t0);
    b.sd(v, t0, 0);
    if use_accumulator {
        b.ld(t0, accb, 0);
        b.add(t0, t0, v);
        b.sd(t0, accb, 0);
    }
    b.blt(i, n_r, "done");
    b.abort_to("seq");
    b.label("done");
    b.thread_end();
    b.label("seq");
    // out[n] = acc
    b.ld(t0, accb, 0);
    b.slli(t1, n_r, 3);
    b.add(t1, ob, t1);
    b.sd(t0, t1, 0);
    b.halt();
    GenProgram {
        program: b.build().unwrap(),
        out_addr: out,
        expected,
    }
}

fn check(seed: u64, preset: ProcPreset, tus: usize) {
    let g = generate(seed);
    let mut m = Machine::new(preset.machine(tus), &g.program).unwrap();
    m.run()
        .unwrap_or_else(|e| panic!("seed {seed} {} {tus}TU: {e}", preset.name()));
    for (k, &want) in g.expected.iter().enumerate() {
        let got = m.memory().read_u64(g.out_addr + 8 * k as u64).unwrap();
        assert_eq!(
            got,
            want,
            "seed {seed} {} {tus}TU diverged at out[{k}]",
            preset.name()
        );
    }
}

#[test]
fn random_programs_agree_with_the_host_interpreter() {
    let seeds: Vec<u64> = (0..24).collect();
    let handles: Vec<_> = seeds
        .chunks(6)
        .map(|chunk| {
            let chunk = chunk.to_vec();
            std::thread::spawn(move || {
                for seed in chunk {
                    // Rotate presets and TU counts across seeds.
                    let preset = ProcPreset::ALL[(seed % 8) as usize];
                    let tus = [1usize, 2, 4, 8][(seed % 4) as usize];
                    check(seed, preset, tus);
                    // And always the two headline configs.
                    check(seed, ProcPreset::Orig, 4);
                    check(seed, ProcPreset::WthWpWec, 8);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}
