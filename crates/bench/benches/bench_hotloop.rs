//! Hot-loop component benchmarks: the per-cycle structures the simulator
//! spends its time in (speculative memory buffer, cache tag probe, whole
//! machine cycle loop).  `BENCH_hotloop.json` records these numbers before
//! and after the flat-structure overhaul; regenerate with
//!
//! ```text
//! WEC_BENCH_JSON=/tmp/hotloop.json cargo bench -p wec-bench --bench bench_hotloop
//! ```
//!
//! then gate the capture against the record with
//! `cargo run -p wec-bench --bin bench_guard -- /tmp/hotloop.json`.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wec_common::ids::{Addr, ThreadId};
use wec_common::SplitMix64;
use wec_core::config::ProcPreset;
use wec_core::membuf::MemBuffer;
use wec_mem::cache::{Cache, CacheGeometry};
use wec_mem::line::LineFlags;
use wec_telemetry::TelemetryConfig;
use wec_trace::{capture_run, replay, CaptureMeta};
use wec_workloads::{run_and_verify, Bench, Scale};

fn bench_membuf(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotloop");
    group.sample_size(20);

    // The per-thread buffer pattern of a parallel region: a burst of stores,
    // interleaved loads (hit + miss + partial), upstream traffic, one drain.
    group.bench_function("membuf store/load/drain region", |b| {
        let mut rng = SplitMix64::new(42);
        b.iter(|| {
            let mut buf = MemBuffer::new();
            buf.announce_upstream(Addr(0x2000), ThreadId(1));
            for i in 0..64u64 {
                let addr = Addr(0x1000 + (rng.below(128) & !7) * 8);
                buf.record_store(addr, 8, i.wrapping_mul(0x9E37));
                black_box(buf.check_load(Addr(0x1000 + (rng.below(1024)) * 8), 8));
                black_box(buf.check_load(addr, 4));
            }
            buf.release_upstream(Addr(0x2000), 8, 7, ThreadId(1));
            black_box(buf.check_load(Addr(0x2000), 8));
            black_box(buf.drain_own().len())
        })
    });

    // Pure dependence-checking path: announced-but-unreleased overlap probes.
    group.bench_function("membuf announced overlap probe", |b| {
        let mut buf = MemBuffer::new();
        for t in 0..4u64 {
            buf.announce_upstream(Addr(0x4000 + t * 64), ThreadId(t));
        }
        for i in 0..32u64 {
            buf.record_store(Addr(0x1000 + i * 8), 8, i);
        }
        let mut rng = SplitMix64::new(7);
        b.iter(|| {
            let addr = Addr(0x1000 + (rng.below(2048)) * 4);
            black_box(buf.check_load(addr, 8))
        })
    });
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotloop");
    group.sample_size(20);

    // The L1 probe mix of a running simulation: mostly hits, periodic
    // conflict-miss inserts.  Direct-mapped (paper default) and 4-way.
    for (name, ways) in [("dm", 1usize), ("4way", 4)] {
        group.bench_function(&format!("cache probe+insert mix ({name})"), |b| {
            let mut cache = Cache::new(CacheGeometry::from_capacity(8 * 1024, ways, 64).unwrap());
            for i in 0..128u64 {
                cache.insert(Addr(i * 64), LineFlags::DEMAND);
            }
            let mut rng = SplitMix64::new(3);
            b.iter(|| {
                let addr = Addr(rng.below(64 * 1024) & !7);
                if cache.touch(addr).is_none() {
                    black_box(cache.insert(addr, LineFlags::DEMAND));
                }
                black_box(cache.contains(addr))
            })
        });
    }
    group.finish();
}

fn bench_machine(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotloop");
    group.sample_size(10);

    // End-to-end cycle loop on the paper machine: mcf (pointer-chasing, the
    // WEC's motivating workload) under the full wth-wp-wec preset exercises
    // fork/announce/release, wrong threads, and the write-back watermark.
    let mcf = Bench::Mcf.build(Scale::SMOKE);
    group.bench_function("simulate mcf smoke (wth-wp-wec, 8 TU)", |b| {
        b.iter(|| {
            run_and_verify(&mcf, ProcPreset::WthWpWec.machine(8))
                .unwrap()
                .cycles
        })
    });

    let gzip = Bench::Gzip.build(Scale::SMOKE);
    group.bench_function("simulate gzip smoke (orig, 8 TU)", |b| {
        b.iter(|| {
            run_and_verify(&gzip, ProcPreset::Orig.machine(8))
                .unwrap()
                .cycles
        })
    });

    // Telemetry overhead guard: the same mcf run with every instrument on
    // (in-memory only — no artifact files).  Compare against the untraced
    // "simulate mcf smoke" number above; the gated-buffer design should
    // keep the telemetry-off run within noise of a build without telemetry,
    // and this bench bounds what turning it on costs.
    group.bench_function("simulate mcf smoke (wth-wp-wec, telemetry on)", |b| {
        b.iter(|| {
            let mut cfg = ProcPreset::WthWpWec.machine(8);
            cfg.telemetry = TelemetryConfig {
                trace_events: true,
                sample_interval: 1000,
                profile: false,
                out_dir: None,
            };
            run_and_verify(&mcf, cfg).unwrap().cycles
        })
    });

    // Profiler overhead guard: the same mcf run with only the cycle-loop
    // self-profiler on (stride-sampled phase timers, no other instrument,
    // no artifact files).  Compare against the untraced "simulate mcf
    // smoke" number above; sampling 1-in-64 cycles should keep this within
    // a few percent of it.
    group.bench_function("simulate mcf smoke (wth-wp-wec, profiled)", |b| {
        b.iter(|| {
            let mut cfg = ProcPreset::WthWpWec.machine(8);
            cfg.telemetry = TelemetryConfig {
                trace_events: false,
                sample_interval: 0,
                profile: true,
                out_dir: None,
            };
            run_and_verify(&mcf, cfg).unwrap().cycles
        })
    });

    // Attribution overhead guard: the same mcf run with only the
    // speculation attribution ledger on (per-line origin tags, per-PC and
    // per-set counters, no artifact files).  Compare against the untraced
    // "simulate mcf smoke" number above; `bench_guard` warns when this
    // entry exceeds it by more than 10%.
    group.bench_function("simulate mcf smoke (wth-wp-wec, attribution on)", |b| {
        b.iter(|| {
            let mut cfg = ProcPreset::WthWpWec.machine(8);
            cfg.attribution = true;
            run_and_verify(&mcf, cfg).unwrap().cycles
        })
    });
    group.finish();

    // Direct median-of-5 comparison so the warning works even without a
    // criterion JSON capture, mirroring the capture-overhead guard below.
    let median = |f: &dyn Fn() -> u64| {
        let mut ns: Vec<u128> = (0..5)
            .map(|_| {
                let t = Instant::now();
                black_box(f());
                t.elapsed().as_nanos()
            })
            .collect();
        ns.sort_unstable();
        ns[2]
    };
    let off = median(&|| {
        run_and_verify(&mcf, ProcPreset::WthWpWec.machine(8))
            .unwrap()
            .cycles
    });
    let on = median(&|| {
        let mut cfg = ProcPreset::WthWpWec.machine(8);
        cfg.attribution = true;
        run_and_verify(&mcf, cfg).unwrap().cycles
    });
    let overhead = (on as f64 / off as f64 - 1.0) * 100.0;
    if overhead > 10.0 {
        eprintln!(
            "WARN attribution overhead {overhead:.1}% (>10%): attribution-off median {off} ns, attribution-on median {on} ns"
        );
    } else {
        eprintln!(
            "attribution overhead {overhead:.1}% (attribution-off median {off} ns, attribution-on median {on} ns)"
        );
    }
}

fn bench_trace(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotloop");
    group.sample_size(10);

    let mcf = Bench::Mcf.build(Scale::SMOKE);
    let cfg = ProcPreset::WthWpWec.machine(8);
    let meta = CaptureMeta {
        bench: mcf.name.to_string(),
        scale_units: Scale::SMOKE.units,
        cfg_label: "bench/wth-wp-wec/t8".to_string(),
    };

    // Full-timing run with the access tap recording (compare against the
    // untraced "simulate mcf smoke" number above for capture overhead).
    group.bench_function("simulate mcf smoke (wth-wp-wec, capture on)", |b| {
        b.iter(|| {
            capture_run(&mcf, cfg.clone(), &meta)
                .unwrap()
                .1
                .header
                .total_records
        })
    });

    // Trace-driven replay of one sweep point: the cache hierarchy alone,
    // re-driven from the captured stream (records/s = trace records over
    // the median time of this entry).
    let (_, trace) = capture_run(&mcf, cfg.clone(), &meta).unwrap();
    eprintln!(
        "replay throughput entry drives {} records per iteration",
        trace.header.total_records
    );
    group.bench_function("replay mcf smoke trace (one sweep point)", |b| {
        b.iter(|| replay(&trace, &cfg).unwrap().records)
    });
    group.finish();

    // Capture-overhead guard: the tap must stay cheap relative to the
    // timing model it records.  Direct median-of-5 comparison so the
    // warning works even without a criterion JSON capture.
    let median = |f: &dyn Fn() -> u64| {
        let mut ns: Vec<u128> = (0..5)
            .map(|_| {
                let t = Instant::now();
                black_box(f());
                t.elapsed().as_nanos()
            })
            .collect();
        ns.sort_unstable();
        ns[2]
    };
    let off = median(&|| run_and_verify(&mcf, cfg.clone()).unwrap().cycles);
    let on = median(&|| capture_run(&mcf, cfg.clone(), &meta).unwrap().0.cycles);
    let overhead = (on as f64 / off as f64 - 1.0) * 100.0;
    if overhead > 10.0 {
        eprintln!(
            "WARN capture overhead {overhead:.1}% (>10%): capture-off median {off} ns, capture-on median {on} ns"
        );
    } else {
        eprintln!(
            "capture overhead {overhead:.1}% (capture-off median {off} ns, capture-on median {on} ns)"
        );
    }
}

criterion_group!(
    benches,
    bench_membuf,
    bench_cache,
    bench_machine,
    bench_trace
);
criterion_main!(benches);
