//! Run-level reporting: the `progress.jsonl` stream and the `run.json`
//! manifest an experiment sweep leaves behind.
//!
//! A sweep is hundreds of simulations resolved from a result cache or run
//! cold across host threads; this module gives it the same treatment PR 2
//! gave individual simulations.  [`ProgressWriter`] streams one JSONL line
//! per simulation start/finish (flushed eagerly, so a live `tail -f` or the
//! TTY renderer always sees the current state), and [`RunManifest`]
//! aggregates the sweep — cache accounting, throughput, the slowest points,
//! and the full per-point metric map that `metricsdiff` compares between
//! runs.  Both formats are hand-rolled JSON with validators in
//! [`crate::schema`], like every other artifact in this crate.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::json::escape_into;

/// Format one `progress.jsonl` `start` line (no trailing newline).  Shared
/// by [`ProgressWriter`] and the serve-mode event streams, so every
/// producer of the progress schema emits byte-identical lines.
pub fn progress_start_line(t_ms: u64, bench: &str, cfg: &str, worker: usize) -> String {
    let mut line = String::from("{\"event\":\"start\"");
    let _ = write!(line, ",\"t_ms\":{t_ms},\"bench\":");
    escape_into(&mut line, bench);
    line.push_str(",\"cfg\":");
    escape_into(&mut line, cfg);
    let _ = write!(line, ",\"worker\":{worker}}}");
    line
}

/// Format one `progress.jsonl` `finish` line (no trailing newline).
pub fn progress_finish_line(
    t_ms: u64,
    bench: &str,
    cfg: &str,
    worker: usize,
    cache: &str,
    dur_ms: u64,
    sim_cycles: u64,
) -> String {
    let kcps = if dur_ms == 0 {
        0.0
    } else {
        sim_cycles as f64 / dur_ms as f64
    };
    let mut line = String::from("{\"event\":\"finish\"");
    let _ = write!(line, ",\"t_ms\":{t_ms},\"bench\":");
    escape_into(&mut line, bench);
    line.push_str(",\"cfg\":");
    escape_into(&mut line, cfg);
    let _ = write!(line, ",\"worker\":{worker},\"cache\":");
    escape_into(&mut line, cache);
    let _ = write!(
        line,
        ",\"dur_ms\":{dur_ms},\"sim_cycles\":{sim_cycles},\"kcps\":{kcps:.1}}}"
    );
    line
}

/// Streaming writer for `progress.jsonl`.  One line per event, flushed per
/// event; times are milliseconds since the start of the run, supplied by
/// the caller from one monotonic clock so lines are time-ordered.
pub struct ProgressWriter {
    out: BufWriter<File>,
    path: PathBuf,
    lines: u64,
}

impl ProgressWriter {
    pub fn create(path: &Path) -> io::Result<ProgressWriter> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        Ok(ProgressWriter {
            out: BufWriter::new(File::create(path)?),
            path: path.to_path_buf(),
            lines: 0,
        })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    pub fn lines(&self) -> u64 {
        self.lines
    }

    fn emit(&mut self, line: String) -> io::Result<()> {
        self.out.write_all(line.as_bytes())?;
        self.out.write_all(b"\n")?;
        self.out.flush()?;
        self.lines += 1;
        Ok(())
    }

    /// A simulation left the cache path and started running cold.
    pub fn start(&mut self, t_ms: u64, bench: &str, cfg: &str, worker: usize) -> io::Result<()> {
        self.emit(progress_start_line(t_ms, bench, cfg, worker))
    }

    /// A simulation finished (or was satisfied from the result cache, in
    /// which case `cache` is `"disk"` and `dur_ms` is the load time).
    #[allow(clippy::too_many_arguments)]
    pub fn finish(
        &mut self,
        t_ms: u64,
        bench: &str,
        cfg: &str,
        worker: usize,
        cache: &str,
        dur_ms: u64,
        sim_cycles: u64,
    ) -> io::Result<()> {
        self.emit(progress_finish_line(
            t_ms, bench, cfg, worker, cache, dur_ms, sim_cycles,
        ))
    }
}

/// One of the slowest simulations of a sweep, kept for the manifest.
#[derive(Clone, Debug)]
pub struct SlowPoint {
    pub bench: String,
    pub cfg: String,
    pub cache: &'static str,
    pub dur_ms: u64,
}

/// The `run.json` manifest (`wec-run-manifest-v1`): everything a later
/// reader needs to understand and compare a finished sweep.
#[derive(Clone, Debug, Default)]
pub struct RunManifest {
    /// Workload scale units the sweep ran at.
    pub scale: u64,
    /// Host machine identity (best effort, `"unknown"` when unavailable).
    pub host: String,
    /// Simulator revision the results belong to.
    pub sim_revision: u64,
    /// Whole-sweep wall time in seconds.
    pub wall_s: f64,
    /// Cache-path accounting: cold simulations, persistent-store hits, and
    /// in-process memoization hits, counted per lookup.
    pub cold: u64,
    pub disk_hits: u64,
    pub mem_hits: u64,
    /// Simulated cycles and wall milliseconds summed over *cold* runs only
    /// (the ETA model inputs: cycles/sec and mean cold duration).
    pub cold_sim_cycles: u64,
    pub cold_wall_ms: u64,
    /// The slowest simulations, already sorted and capped by the caller.
    pub slowest: Vec<SlowPoint>,
    /// Names of the tables/figures the sweep regenerated.
    pub tables: Vec<String>,
    /// Per-point metrics: `(point label, [(metric, value)])`, sorted by
    /// label.  This is the subtree `metricsdiff` compares.
    pub metrics: Vec<(String, Vec<(String, u64)>)>,
}

impl RunManifest {
    /// Fraction of distinct simulations satisfied by the persistent store
    /// instead of running cold.
    pub fn cache_hit_rate(&self) -> f64 {
        let distinct = self.cold + self.disk_hits;
        if distinct == 0 {
            0.0
        } else {
            self.disk_hits as f64 / distinct as f64
        }
    }

    /// Serialize as the `run.json` document.
    pub fn to_json(&self) -> String {
        let lookups = self.cold + self.disk_hits + self.mem_hits;
        let mean_cold_ms = if self.cold == 0 {
            0.0
        } else {
            self.cold_wall_ms as f64 / self.cold as f64
        };
        let cycles_per_sec = if self.cold_wall_ms == 0 {
            0.0
        } else {
            self.cold_sim_cycles as f64 * 1000.0 / self.cold_wall_ms as f64
        };
        let mut out = String::from("{\"schema\":\"wec-run-manifest-v1\"");
        let _ = write!(out, ",\"scale\":{},\"host\":", self.scale);
        escape_into(&mut out, &self.host);
        let _ = write!(
            out,
            ",\"sim_revision\":{},\"wall_s\":{:.3}",
            self.sim_revision, self.wall_s
        );
        let _ = write!(
            out,
            ",\"simulations\":{{\"lookups\":{lookups},\"cold\":{},\"disk_hits\":{},\"mem_hits\":{},\"cache_hit_rate\":{:.6}}}",
            self.cold,
            self.disk_hits,
            self.mem_hits,
            self.cache_hit_rate()
        );
        let _ = write!(
            out,
            ",\"eta\":{{\"mean_cold_ms\":{mean_cold_ms:.3},\"sim_cycles_per_sec\":{cycles_per_sec:.1}}}"
        );
        out.push_str(",\"slowest\":[");
        for (i, p) in self.slowest.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"bench\":");
            escape_into(&mut out, &p.bench);
            out.push_str(",\"cfg\":");
            escape_into(&mut out, &p.cfg);
            out.push_str(",\"cache\":");
            escape_into(&mut out, p.cache);
            let _ = write!(out, ",\"dur_ms\":{}}}", p.dur_ms);
        }
        out.push_str("],\"tables\":[");
        for (i, t) in self.tables.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_into(&mut out, t);
        }
        out.push_str("],\"metrics\":{");
        for (i, (label, kv)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_into(&mut out, label);
            out.push_str(":{");
            for (j, (k, v)) in kv.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                escape_into(&mut out, k);
                let _ = write!(out, ":{v}");
            }
            out.push('}');
        }
        out.push_str("}}\n");
        out
    }

    /// Serialize and write to `path`.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn manifest() -> RunManifest {
        RunManifest {
            scale: 1,
            host: "testhost".into(),
            sim_revision: 1,
            wall_s: 2.5,
            cold: 10,
            disk_hits: 2,
            mem_hits: 30,
            cold_sim_cycles: 1_000_000,
            cold_wall_ms: 500,
            slowest: vec![SlowPoint {
                bench: "181.mcf".into(),
                cfg: "wth-wp-wec/t8".into(),
                cache: "cold",
                dur_ms: 120,
            }],
            tables: vec!["fig17".into()],
            metrics: vec![(
                "181.mcf|wth-wp-wec/t8".into(),
                vec![("cycles".into(), 123), ("checksum".into(), 9)],
            )],
        }
    }

    #[test]
    fn manifest_json_round_trips_through_the_parser() {
        let m = manifest();
        let v = json::parse(&m.to_json()).unwrap();
        assert_eq!(
            v.get("schema").unwrap().as_str(),
            Some("wec-run-manifest-v1")
        );
        let sims = v.get("simulations").unwrap();
        assert_eq!(sims.get("lookups").unwrap().as_u64(), Some(42));
        assert_eq!(sims.get("cold").unwrap().as_u64(), Some(10));
        let rate = sims.get("cache_hit_rate").unwrap().as_f64().unwrap();
        assert!((rate - 2.0 / 12.0).abs() < 1e-6);
        let eta = v.get("eta").unwrap();
        assert_eq!(eta.get("mean_cold_ms").unwrap().as_f64(), Some(50.0));
        let point = v
            .get("metrics")
            .unwrap()
            .get("181.mcf|wth-wp-wec/t8")
            .unwrap();
        assert_eq!(point.get("cycles").unwrap().as_u64(), Some(123));
    }

    #[test]
    fn progress_writer_streams_jsonl() {
        let dir = std::env::temp_dir().join(format!("wec-progress-{}", std::process::id()));
        let path = dir.join("progress.jsonl");
        let mut w = ProgressWriter::create(&path).unwrap();
        w.start(5, "181.mcf", "orig/t8", 0).unwrap();
        w.finish(17, "181.mcf", "orig/t8", 0, "cold", 12, 48_000)
            .unwrap();
        w.finish(18, "164.gzip", "orig/t8", 1, "disk", 0, 9_000)
            .unwrap();
        assert_eq!(w.lines(), 3);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        let first = json::parse(lines[0]).unwrap();
        assert_eq!(first.get("event").unwrap().as_str(), Some("start"));
        let second = json::parse(lines[1]).unwrap();
        assert_eq!(second.get("kcps").unwrap().as_f64(), Some(4000.0));
        let third = json::parse(lines[2]).unwrap();
        assert_eq!(third.get("cache").unwrap().as_str(), Some("disk"));
        assert_eq!(third.get("kcps").unwrap().as_f64(), Some(0.0));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
