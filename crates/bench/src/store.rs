//! Atomic writes for the persistent result store.
//!
//! The store is shared by concurrent writers from several angles at once:
//! host threads inside one `experiments` sweep, replay sweeps, and — since
//! the serve daemon — N worker threads in a long-lived process racing with
//! interactive CLI runs on the same machine.  Readers take whatever file is
//! at the final path with a bare `read_to_string`, so the only safe publish
//! protocol is write-to-temp + atomic rename: a reader sees either the old
//! complete entry or the new complete entry, never a partial write.
//!
//! The temp name embeds both the process id and the thread id.  Process id
//! alone is not enough: two worker threads of one daemon racing on the same
//! key would interleave writes into one temp file and publish garbage.

use std::io;
use std::path::Path;

/// Write `contents` to `path` atomically (temp file + rename), creating the
/// parent directory if needed.  On any failure the temp file is removed and
/// the error returned; the final path is never left half-written.
pub fn atomic_write(path: &Path, contents: &str) -> io::Result<()> {
    let dir = path
        .parent()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no parent"))?;
    std::fs::create_dir_all(dir)?;
    let tmp = path.with_extension(format!(
        "tmp.{}.{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let write = std::fs::write(&tmp, contents).and_then(|()| std::fs::rename(&tmp, path));
    if write.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    write
}

/// [`atomic_write`] for best-effort callers: a read-only or vanished target
/// silently degrades to not caching (the entry is recomputed next time).
pub fn atomic_write_best_effort(path: &Path, contents: &str) {
    let _ = atomic_write(path, contents);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    fn scratch(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("wec-store-{name}-{}", std::process::id()))
    }

    #[test]
    fn writes_and_replaces() {
        let dir = scratch("basic");
        let path = dir.join("entry.kv");
        atomic_write(&path, "cycles 1\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "cycles 1\n");
        atomic_write(&path, "cycles 2\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "cycles 2\n");
        // No temp litter left behind.
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The multi-writer regression test for the daemon: two threads hammer
    /// the same key with different (self-consistent) payloads while a
    /// reader polls the final path.  Every read must parse as one complete
    /// payload — torn or interleaved content fails the run.
    #[test]
    fn racing_writers_never_publish_a_torn_entry() {
        let dir = scratch("race");
        let path = dir.join("entry.kv");
        let a = "writer a\n".repeat(512);
        let b = "writer b\n".repeat(512);
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            let writers: Vec<_> = [&a, &b]
                .into_iter()
                .map(|payload| {
                    s.spawn(|| {
                        for _ in 0..300 {
                            atomic_write(&path, payload).unwrap();
                        }
                    })
                })
                .collect();
            let reader = s.spawn(|| {
                let mut seen = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    if let Ok(text) = std::fs::read_to_string(&path) {
                        assert!(
                            text == a || text == b,
                            "torn read: {} bytes, first line {:?}",
                            text.len(),
                            text.lines().next()
                        );
                        seen += 1;
                    }
                }
                seen
            });
            for w in writers {
                w.join().unwrap();
            }
            stop.store(true, Ordering::Relaxed);
            assert!(
                reader.join().unwrap() > 0,
                "reader never observed the entry"
            );
        });
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
